"""Tests for the SLIDE baseline: LSH tables, active sampling, trainer."""

import numpy as np
import pytest

from repro.baselines.slide.lsh import SimHashLSH
from repro.baselines.slide.sampler import ActiveLabelSampler
from repro.baselines.slide.trainer import SlideTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams


class TestSimHashLSH:
    def make_index(self, dim=16, n_items=200, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(dim, n_items)).astype(np.float32)
        lsh = SimHashLSH(dim, seed=seed, **kwargs)
        lsh.rebuild(weights)
        return lsh, weights

    def test_query_before_rebuild_rejected(self):
        lsh = SimHashLSH(8)
        with pytest.raises(ConfigurationError):
            lsh.query(np.zeros(8, dtype=np.float32))

    def test_self_retrieval(self):
        """An item's own vector must retrieve the item (identical signatures)."""
        lsh, weights = self.make_index()
        hits = 0
        for j in range(50):
            if j in lsh.query(np.ascontiguousarray(weights[:, j])):
                hits += 1
        assert hits == 50

    def test_similarity_bias(self):
        """Queries retrieve high-inner-product items far above chance."""
        lsh, weights = self.make_index(n_items=500)
        rng = np.random.default_rng(3)
        better = 0
        trials = 30
        for _ in range(trials):
            q = rng.normal(size=16).astype(np.float32)
            retrieved = lsh.query(q)
            if retrieved.size == 0 or retrieved.size == 500:
                continue
            sims = q @ weights  # inner products with all items
            mean_retrieved = sims[retrieved].mean()
            mask = np.ones(500, dtype=bool)
            mask[retrieved] = False
            if mean_retrieved > sims[mask].mean():
                better += 1
        assert better > trials * 0.7

    def test_rebuild_reflects_new_weights(self):
        lsh, weights = self.make_index()
        moved = weights.copy()
        moved[:, 0] = -moved[:, 0]
        lsh.rebuild(moved)
        assert lsh.rebuilds == 2
        # Item 0's negated vector retrieves item 0 under the new index.
        assert 0 in lsh.query(np.ascontiguousarray(moved[:, 0]))

    def test_query_returns_sorted_unique(self):
        lsh, _ = self.make_index(n_tables=12, n_bits=4)
        out = lsh.query(np.ones(16, dtype=np.float32))
        assert np.array_equal(out, np.unique(out))

    def test_deterministic(self):
        a, wa = self.make_index(seed=9)
        b, wb = self.make_index(seed=9)
        q = np.linspace(-1, 1, 16).astype(np.float32)
        assert np.array_equal(a.query(q), b.query(q))

    def test_shape_validation(self):
        lsh = SimHashLSH(8)
        with pytest.raises(ConfigurationError):
            lsh.rebuild(np.zeros((9, 10), dtype=np.float32))
        lsh.rebuild(np.zeros((8, 10), dtype=np.float32))
        with pytest.raises(ConfigurationError):
            lsh.query(np.zeros(9, dtype=np.float32))

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SimHashLSH(0)
        with pytest.raises(ConfigurationError):
            SimHashLSH(8, n_tables=0)
        with pytest.raises(ConfigurationError):
            SimHashLSH(8, n_bits=40)


class TestActiveLabelSampler:
    def make(self, n_labels=300, **kwargs):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(16, n_labels)).astype(np.float32)
        lsh = SimHashLSH(16, seed=1)
        lsh.rebuild(weights)
        defaults = dict(min_active=20, max_active=64, seed=2)
        defaults.update(kwargs)
        return ActiveLabelSampler(n_labels, lsh, **defaults), weights

    def test_true_labels_always_first(self):
        sampler, _ = self.make()
        true = np.array([5, 250, 17])
        active = sampler.sample(np.ones(16, dtype=np.float32), true)
        assert np.array_equal(active[:3], np.unique(true))

    def test_min_active_enforced(self):
        sampler, _ = self.make(min_active=30)
        active = sampler.sample(np.zeros(16, dtype=np.float32), np.array([1]))
        assert active.size >= 30

    def test_max_active_enforced(self):
        sampler, _ = self.make(max_active=40)
        active = sampler.sample(np.ones(16, dtype=np.float32), np.array([1]))
        assert active.size <= 40

    def test_no_duplicates(self):
        sampler, _ = self.make()
        active = sampler.sample(
            np.ones(16, dtype=np.float32), np.array([3, 4])
        )
        assert len(np.unique(active)) == len(active)

    def test_no_labels_rejected(self):
        sampler, _ = self.make()
        with pytest.raises(ConfigurationError):
            sampler.sample(np.ones(16, dtype=np.float32), np.array([], dtype=np.int64))

    def test_more_true_labels_than_cap(self):
        sampler, _ = self.make(min_active=4, max_active=8)
        true = np.arange(20)
        active = sampler.sample(np.ones(16, dtype=np.float32), true)
        assert np.array_equal(np.sort(active), true)  # all kept

    def test_invalid_bounds_rejected(self):
        lsh = SimHashLSH(4)
        with pytest.raises(ConfigurationError):
            ActiveLabelSampler(10, lsh, min_active=5, max_active=4)


class TestSlideTrainer:
    def make_trainer(self, micro_task, **kwargs):
        server = make_server(
            1, seed=5, cost_params=GpuCostParams.tiny_model_profile()
        )
        defaults = dict(
            hidden=(32,), init_seed=7, data_seed=3, eval_samples=128,
        )
        defaults.update(kwargs)
        return SlideTrainer(
            micro_task, server,
            AdaptiveSGDConfig(b_max=64, base_lr=0.5, mega_batch_batches=8),
            **defaults,
        )

    def test_learns(self, micro_task):
        trace = self.make_trainer(micro_task, lr=0.05).run(time_budget_s=0.01)
        assert trace.best_accuracy > trace.points[0].accuracy + 0.1

    def test_per_sample_updates(self, micro_task):
        trace = self.make_trainer(micro_task).run(time_budget_s=0.005)
        last = trace.points[-1]
        assert last.updates == last.samples  # one update per sample

    def test_statistical_efficiency_premise(self, micro_task):
        """SLIDE performs far more updates per epoch than batched SGD."""
        trace = self.make_trainer(micro_task).run(time_budget_s=0.005)
        last = trace.points[-1]
        updates_per_epoch = last.updates / max(last.epochs, 1e-9)
        assert updates_per_epoch == pytest.approx(
            micro_task.train.n_samples, rel=0.01
        )

    def test_deterministic(self, micro_task):
        a = self.make_trainer(micro_task).run(time_budget_s=0.004)
        b = self.make_trainer(micro_task).run(time_budget_s=0.004)
        assert [p.accuracy for p in a.points] == [p.accuracy for p in b.points]

    def test_default_lr_linear_scaled(self, micro_task):
        trainer = self.make_trainer(micro_task)
        assert trainer.lr == pytest.approx(0.5 / 64)

    def test_requires_single_hidden_layer(self, micro_task):
        trainer = self.make_trainer(micro_task, hidden=(16, 16))
        with pytest.raises(ConfigurationError, match="3-layer"):
            trainer.run(time_budget_s=0.002)

    def test_runs_on_cpu_device(self, micro_task):
        trainer = self.make_trainer(micro_task)
        trainer.run(time_budget_s=0.004)
        assert trainer.server.cpu.busy_seconds > 0
        assert all(g.busy_seconds == 0 for g in trainer.server.gpus)
