"""Tests for the TF baseline's two distribution strategies (§V-A).

The paper extended the SLIDE testbed's TensorFlow code "to multi-GPUs both
with the mirrored and central storage strategy. Since the mirrored strategy
proves superior, we include only these TensorFlow results in the paper."
These tests reproduce that finding on hardware where the host link/CPU are
realistically slower than device-to-device collectives.
"""

import pytest

from repro.baselines.sync_sgd import SyncSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.gpu.cluster import make_server
from repro.gpu.cost import CpuCostParams, GpuCostParams


def build(strategy, micro_task):
    server = make_server(
        4, seed=5,
        cost_params=GpuCostParams.tiny_model_profile(),
        cpu_params=CpuCostParams.tiny_model_profile(),
    )
    cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=16)
    return SyncSGDTrainer(
        micro_task, server, cfg, strategy=strategy, hidden=(32,),
        init_seed=7, data_seed=3, eval_samples=128,
    )


class TestStrategies:
    def test_strategy_recorded_in_metadata(self, micro_task):
        trace = build("central_storage", micro_task).run(time_budget_s=0.01)
        assert trace.metadata["strategy"] == "central_storage"

    def test_mirrored_proves_superior(self, micro_task):
        """The paper's reason for reporting only mirrored results."""
        mirrored = build("mirrored", micro_task).run(time_budget_s=0.05)
        central = build("central_storage", micro_task).run(time_budget_s=0.05)
        assert mirrored.total_epochs > central.total_epochs

    def test_same_statistical_path(self, micro_task):
        """Strategies differ in sync cost only — the numerics are identical,
        so accuracy-vs-samples curves must coincide."""
        mirrored = build("mirrored", micro_task).run(time_budget_s=0.03)
        central = build("central_storage", micro_task).run(time_budget_s=0.03)
        n = min(len(mirrored.points), len(central.points))
        assert [p.accuracy for p in mirrored.points[:n]] == pytest.approx(
            [p.accuracy for p in central.points[:n]]
        )

    def test_unknown_strategy_rejected(self, micro_task):
        server = make_server(2, seed=0)
        with pytest.raises(ValueError, match="strategy"):
            SyncSGDTrainer(
                micro_task, server,
                AdaptiveSGDConfig(b_max=64, base_lr=0.2),
                strategy="magic", hidden=(32,),
            )
