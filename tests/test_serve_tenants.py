"""Multi-tenant serving acceptance tests: noisy-neighbor isolation, shed
accounting, deterministic replay, and hot-swap safety under tenant load.

The noisy-neighbor bound (victim p99 within ``ISOLATION_BOUND`` of its
solo run) is the acceptance criterion the ``tenants`` section of
``benchmarks/bench_serve.py`` gates on; this file pins the same scenario
at test scale so a scheduler regression fails in the unit suite before
the bench ever runs.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.serve import (
    LoadSpec,
    ModelSnapshot,
    Predictor,
    Request,
    ServingEngine,
    SnapshotStore,
    TenantLoad,
    TenantScheduler,
    generate_arrivals,
    generate_multi_tenant_arrivals,
)
from repro.sparse.mlp import MLPArchitecture, SparseMLP

ISOLATION_BOUND = 1.3
TRACE_PATH = Path(__file__).parent / "data" / "tenant_trace.json"


@pytest.fixture(scope="module")
def predictor(micro_task):
    arch = MLPArchitecture(
        micro_task.n_features, micro_task.n_labels, hidden=(32,)
    )
    state = SparseMLP(arch).init_state(seed=21)
    snapshot = ModelSnapshot(arch=arch, state=state, meta={"dataset": "micro"})
    return Predictor(snapshot)


def serve_server(n_gpus=2, seed=0):
    return make_server(
        n_gpus, cost_params=GpuCostParams.tiny_model_profile(), seed=seed
    )


def capacity_rps(predictor, X):
    """The cluster's sequential (batch=1) capacity in requests/s."""
    work = predictor.workload(X[:1])
    per_request = serve_server().gpus[0].cost_model.inference_time(
        work, n_active_gpus=2
    )
    return 2.0 / per_request


def mt_engine(predictor, *, max_depth=256, **extra):
    return ServingEngine(
        predictor, serve_server(), mode="adaptive",
        class_slo_ms={0: 2.0, 1: 2.0}, max_queue_depth=max_depth, **extra,
    )


class TestNoisyNeighbor:
    """A 10x-fair-share class-1 aggressor must not move the class-0
    victim's p99 beyond the isolation bound."""

    def test_victim_p99_isolated(self, predictor, micro_task):
        X = micro_task.test.X
        cap = capacity_rps(predictor, X)
        n_victim = 800
        victim_rate = 0.3 * cap
        victim = TenantLoad(
            "victim",
            LoadSpec(n_requests=n_victim, rate_rps=victim_rate, seed=0),
            priority_class=0,
        )
        duration = n_victim / victim_rate
        aggressor_rate = 10.0 * cap / 2.0
        aggressor = TenantLoad(
            "noisy",
            LoadSpec(
                n_requests=int(aggressor_rate * duration),
                rate_rps=aggressor_rate, seed=1,
            ),
            priority_class=1,
        )

        solo = mt_engine(predictor).serve(
            X, generate_arrivals(victim.spec), k=5,
            tenants=np.full(n_victim, "victim", dtype=object),
            priority_classes=np.zeros(n_victim, dtype=np.int64),
        )
        times, tenants, classes = generate_multi_tenant_arrivals(
            [victim, aggressor]
        )
        contended = mt_engine(predictor).serve(
            X, times, k=5, tenants=tenants, priority_classes=classes,
        )

        solo_p99 = solo.tenants["victim"]["latency_p99_ms"]
        contended_p99 = contended.tenants["victim"]["latency_p99_ms"]
        assert contended.tenants["victim"]["completed"] == n_victim
        assert contended.tenants["victim"]["n_shed"] == 0
        assert contended_p99 <= ISOLATION_BOUND * solo_p99
        # The aggressor is still served (no starvation of admitted work).
        assert contended.tenants["noisy"]["completed"] > 0

    def test_surge_sheds_only_aggressor(self, predictor, micro_task):
        """40x fair share against a shallow queue: graded shedding must
        land every shed on the aggressor class."""
        X = micro_task.test.X
        cap = capacity_rps(predictor, X)
        n_victim = 400
        victim_rate = 0.3 * cap
        duration = n_victim / victim_rate
        aggressor_rate = 40.0 * cap / 2.0
        loads = [
            TenantLoad(
                "victim",
                LoadSpec(n_requests=n_victim, rate_rps=victim_rate, seed=0),
                priority_class=0,
            ),
            TenantLoad(
                "noisy",
                LoadSpec(
                    n_requests=int(aggressor_rate * duration),
                    rate_rps=aggressor_rate, seed=1,
                ),
                priority_class=1,
            ),
        ]
        times, tenants, classes = generate_multi_tenant_arrivals(loads)
        result = mt_engine(predictor, max_depth=64).serve(
            X, times, k=5, tenants=tenants, priority_classes=classes,
        )
        assert result.tenants["victim"]["n_shed"] == 0
        assert result.tenants["noisy"]["n_shed"] > 0
        assert result.shed_by_tenant == {
            "noisy": result.tenants["noisy"]["n_shed"]
        }


class TestShedAccounting:
    """Pins the LatencyReport shed semantics: shed requests are excluded
    from the latency sample, counted per tenant, and offered load is
    completed + shed."""

    def _overloaded(self, predictor, X, n=600, depth=8):
        cap = capacity_rps(predictor, X)
        tenants = np.where(np.arange(n) % 3 == 0, "small", "big").astype(
            object
        )
        classes = np.where(tenants == "small", 0, 1).astype(np.int64)
        arrivals = generate_arrivals(
            LoadSpec(n_requests=n, rate_rps=20.0 * cap, seed=5)
        )
        result = mt_engine(predictor, max_depth=depth).serve(
            X, arrivals, k=5, tenants=tenants, priority_classes=classes,
        )
        return result, tenants

    def test_shed_excluded_from_percentiles(self, predictor, micro_task):
        result, tenants = self._overloaded(predictor, micro_task.test.X)
        report = result.report
        assert report.n_shed > 0
        # The latency sample holds completed requests only.
        completed = [r for r in result.requests if r.t_done is not None]
        shed = [r for r in result.requests if r.shed]
        assert len(report.latencies_s) == len(completed)
        assert len(completed) + len(shed) == len(tenants)
        assert all(r.t_done is None for r in shed)
        expected = np.sort(
            [r.latency_s for r in completed]
        )
        assert np.allclose(np.sort(report.latencies_s), expected)

    def test_shed_by_tenant_sums_to_total(self, predictor, micro_task):
        result, tenants = self._overloaded(predictor, micro_task.test.X)
        report = result.report
        assert sum(report.shed_by_tenant.values()) == report.n_shed
        assert report.shed_by_tenant == result.shed_by_tenant
        # Offered = completed + shed, per tenant and overall.
        for name in ("small", "big"):
            offered = int(np.sum(tenants == name))
            stats = result.tenants[name]
            assert stats["completed"] + stats["n_shed"] == offered
        as_dict = report.as_dict()
        assert as_dict["n_shed"] == report.n_shed
        assert as_dict["shed_by_tenant"] == report.shed_by_tenant

    def test_shed_reasons_recorded(self, predictor, micro_task):
        result, _ = self._overloaded(predictor, micro_task.test.X)
        reasons = {r.shed_reason for r in result.requests if r.shed}
        assert reasons <= {"capacity", "displaced", "utilization"}
        assert reasons  # at least one shed with a recorded reason


def replay_trace(ops):
    """Replay a recorded op stream through a fresh TenantScheduler and
    return the serialized decision log (the byte string under test)."""
    scheduler = TenantScheduler(
        n_priority_classes=3,
        weights={"a": 2.0, "b": 1.0, "c": 1.0},
        max_depth=16,
        admission_utilization=0.9,
        n_devices=2,
    )
    lines = []
    for op in ops:
        if op["op"] == "push":
            request = Request(
                req_id=op["id"], row=op["id"], t_arrival=op["t"],
                version=op["version"], tenant=op["tenant"],
                priority_class=op["cls"],
            )
            shed = scheduler.push(request, now=op["t"])
            if shed is None:
                outcome = "admit"
            elif shed is request:
                outcome = f"shed:{request.shed_reason}"
            else:
                outcome = (
                    f"displace {shed.tenant}/{shed.priority_class}"
                    f"#{shed.req_id}"
                )
            lines.append(
                f"push {op['tenant']}/{op['cls']}#{op['id']} -> {outcome}"
            )
        elif op["op"] == "pop":
            batch = scheduler.pop_batch(op["max_size"])
            popped = ",".join(
                f"{r.tenant}/{r.priority_class}v{r.version}#{r.req_id}"
                for r in batch
            )
            lines.append(f"pop{op['max_size']} -> [{popped}]")
        elif op["op"] == "busy":
            scheduler.observe_busy(op["s"])
    return "\n".join(lines).encode()


class TestDeterministicReplay:
    """The checked-in seeded trace must produce byte-identical scheduler
    decisions on every run (no set/dict iteration order, no hidden RNG)."""

    def test_replay_is_byte_identical(self):
        fixture = json.loads(TRACE_PATH.read_text())
        first = replay_trace(fixture["ops"])
        second = replay_trace(fixture["ops"])
        assert first == second
        assert hashlib.sha256(first).hexdigest() == fixture["decisions_sha256"]

    def test_trace_exercises_all_decisions(self):
        """Fixture self-check: the trace covers admit, shed, displace,
        and non-trivial batches — otherwise the hash proves nothing."""
        fixture = json.loads(TRACE_PATH.read_text())
        log = replay_trace(fixture["ops"]).decode()
        assert "-> admit" in log
        assert "shed:" in log
        assert "displace " in log
        assert "," in log  # at least one multi-request batch


class TestTenantTelemetry:
    def test_spans_sheds_and_analyze_breakdown(self, predictor, micro_task):
        from repro.telemetry import Telemetry
        from repro.telemetry.analyze import analyze_report, tenant_breakdown
        from repro.telemetry.events import EVENT_SHED, SPAN_SERVE_REQUEST
        from repro.telemetry.trace_data import TraceData

        X = micro_task.test.X
        cap = capacity_rps(predictor, X)
        n = 400
        tenants = np.where(np.arange(n) % 2 == 0, "a", "b").astype(object)
        classes = (np.arange(n) % 2).astype(np.int64)
        tel = Telemetry(label="tenant-test")
        result = ServingEngine(
            predictor, serve_server(), mode="adaptive",
            class_slo_ms={0: 2.0, 1: 2.0}, max_queue_depth=8,
            telemetry=tel,
        ).serve(
            X, generate_arrivals(
                LoadSpec(n_requests=n, rate_rps=20.0 * cap, seed=5)
            ), k=5, tenants=tenants, priority_classes=classes,
        )
        assert result.n_shed > 0

        request_spans = [
            s for s in tel.spans if s.name == SPAN_SERVE_REQUEST
        ]
        assert {s.args["tenant"] for s in request_spans} == {"a", "b"}
        assert {s.args["priority_class"] for s in request_spans} == {0, 1}
        sheds = [i for i in tel.instants if i.name == EVENT_SHED]
        assert len(sheds) == result.n_shed
        for instant in sheds:
            assert instant.args["reason"] in (
                "capacity", "utilization", "displaced"
            )

        run = TraceData.from_telemetry(tel).run(0)
        breakdown = tenant_breakdown(run)
        assert breakdown is not None
        assert set(breakdown["tenants"]) == {"a", "b"}
        for name in ("a", "b"):
            row = breakdown["tenants"][name]
            assert row["completed"] == result.tenants[name]["completed"]
            assert row["n_shed"] == result.tenants[name]["n_shed"]
        assert breakdown["n_shed"] == result.n_shed
        report = analyze_report(tel)
        (entry,) = report["runs"]
        assert entry["serving_tenants"]["n_shed"] == result.n_shed

    def test_untagged_run_has_no_breakdown(self, predictor, micro_task):
        from repro.telemetry import Telemetry
        from repro.telemetry.analyze import tenant_breakdown
        from repro.telemetry.trace_data import TraceData

        tel = Telemetry(label="untagged")
        ServingEngine(
            predictor, serve_server(), mode="adaptive", telemetry=tel,
        ).serve(
            micro_task.test.X,
            generate_arrivals(LoadSpec(n_requests=60, rate_rps=1e5, seed=2)),
            k=5,
        )
        assert tenant_breakdown(TraceData.from_telemetry(tel).run(0)) is None


class TestEngineMultiTenant:
    def test_uniform_split_is_fair(self, predictor, micro_task):
        X = micro_task.test.X
        n = 600
        cap = capacity_rps(predictor, X)
        arrivals = generate_arrivals(
            LoadSpec(n_requests=n, rate_rps=5.0 * cap, seed=7)
        )
        tenants = np.where(np.arange(n) % 2 == 0, "a", "b").astype(object)
        result = ServingEngine(
            predictor, serve_server(), mode="adaptive",
            target_latency_s=2e-3,
        ).serve(X, arrivals, k=5, tenants=tenants,
                priority_classes=np.zeros(n, dtype=np.int64))
        assert set(result.tenants) == {"a", "b"}
        assert result.fairness is not None
        assert result.fairness == pytest.approx(1.0, abs=0.1)
        assert result.as_dict()["fairness"] == result.fairness

    def test_utilization_gate_protects_class_zero(
        self, predictor, micro_task
    ):
        X = micro_task.test.X
        n = 900
        cap = capacity_rps(predictor, X)
        classes = (np.arange(n) % 3).astype(np.int64)
        tenants = np.array(
            [f"t{c}" for c in classes], dtype=object
        )
        arrivals = generate_arrivals(
            LoadSpec(n_requests=n, rate_rps=5.0 * cap, seed=9)
        )
        result = ServingEngine(
            predictor, serve_server(), mode="adaptive",
            target_latency_s=2e-3, priority_classes=3,
            admission_utilization=0.5,
        ).serve(X, arrivals, k=5, tenants=tenants,
                priority_classes=classes)
        per_class = result.per_class
        assert per_class[0]["n_shed"] == 0
        assert per_class[0]["completed"] == n // 3
        # Graded: the lowest class sheds at least as much as the middle.
        assert per_class[2]["n_shed"] >= per_class[1]["n_shed"] > 0

    def test_legacy_untagged_run_unchanged(self, predictor, micro_task):
        """No tenant kwargs -> no tenant keys in the result dict."""
        X = micro_task.test.X
        arrivals = generate_arrivals(
            LoadSpec(n_requests=50, rate_rps=1e5, seed=2)
        )
        result = ServingEngine(
            predictor, serve_server(), mode="adaptive",
        ).serve(X, arrivals, k=5)
        as_dict = result.as_dict()
        assert result.tenants == {}
        assert "tenants" not in as_dict
        assert "fairness" not in as_dict

    def test_hot_swap_with_tenants_no_misversioning(
        self, micro_task, tmp_path
    ):
        """Version pinning must hold under multi-tenant load: every
        response scored by the snapshot active at its dispatch."""
        arch = MLPArchitecture(
            micro_task.n_features, micro_task.n_labels, hidden=(32,)
        )
        store = SnapshotStore(tmp_path / "store")
        for version, (seed, t_pub) in enumerate(
            [(21, 0.0), (22, 0.002), (23, 0.004)], start=1
        ):
            snapshot = ModelSnapshot(
                arch=arch, state=SparseMLP(arch).init_state(seed=seed),
                meta={"dataset": "micro"},
            )
            store.publish(snapshot, published_s=t_pub)
        from repro.api import make_engine

        engine = make_engine(
            store, mode="adaptive", n_gpus=2,
            class_slo_ms={0: 2.0, 1: 2.0}, max_queue_depth=256,
        )
        n = 500
        rate = n / 0.008  # arrivals span the publish schedule
        arrivals = generate_arrivals(
            LoadSpec(n_requests=n, rate_rps=rate, seed=3)
        )
        tenants = np.where(np.arange(n) % 2 == 0, "a", "b").astype(object)
        classes = (np.arange(n) % 2).astype(np.int64)
        result = engine.serve(
            micro_task.test.X, arrivals, k=5,
            tenants=tenants, priority_classes=classes,
        )
        assert result.n_swaps >= 1
        assert result.mis_versioned == 0
        assert result.n_shed == 0
        assert len(result.versions_served) >= 2
        assert set(result.tenants) == {"a", "b"}
