"""Tests for repro.serve.predictor — exact and LSH-accelerated top-k."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ServeError
from repro.serve.predictor import Predictor
from repro.serve.snapshot import ModelSnapshot
from repro.sparse.mlp import MLPArchitecture, SparseMLP


@pytest.fixture(scope="module")
def micro_snapshot(micro_task):
    arch = MLPArchitecture(
        micro_task.n_features, micro_task.n_labels, hidden=(32,)
    )
    state = SparseMLP(arch).init_state(seed=11)
    return ModelSnapshot(arch=arch, state=state, meta={"dataset": "micro"})


@pytest.fixture()
def predictor(micro_snapshot):
    return Predictor(micro_snapshot)


class TestExactPath:
    def test_topk_matches_stable_argsort(self, predictor, micro_task):
        X = micro_task.test.X[:20]
        scores = predictor.score(X)
        expected = np.argsort(-scores, axis=1, kind="stable")[:, :5]
        assert np.array_equal(predictor.topk(X, 5), expected)

    def test_score_batched_equals_whole(self, micro_snapshot, micro_task):
        X = micro_task.test.X[:50]
        whole = Predictor(micro_snapshot, chunk=4096).score(X)
        chunked = Predictor(micro_snapshot, chunk=7).score(X)
        assert np.array_equal(whole, chunked)

    def test_query_validation(self, predictor, micro_task):
        with pytest.raises(ConfigurationError, match="sparse"):
            predictor.score(np.zeros((2, micro_task.n_features)))
        import scipy.sparse as sp

        with pytest.raises(ConfigurationError, match="features"):
            predictor.score(sp.csr_matrix((2, 3), dtype=np.float32))

    def test_bad_chunk_rejected(self, micro_snapshot):
        with pytest.raises(ConfigurationError):
            Predictor(micro_snapshot, chunk=0)

    def test_workload_describes_batch(self, predictor, micro_task):
        X = micro_task.test.X[:8]
        work = predictor.workload(X)
        assert work.batch_size == 8
        assert work.batch_nnz == int(X.nnz)
        assert work.layer_dims == tuple(predictor.arch.layer_dims)


class TestLshPath:
    def test_output_shape_and_validity(self, predictor, micro_task):
        X = micro_task.test.X[:16]
        out = predictor.topk_lsh(X, 5)
        L = predictor.arch.n_labels
        assert out.shape == (16, 5)
        assert out.min() >= 0 and out.max() < L
        for row in out:
            assert len(set(row.tolist())) == 5  # no duplicate labels

    def test_exhaustive_tables_recover_exact(self, micro_snapshot, micro_task):
        """With 1-bit hashes and many tables the candidate set covers every
        label, so the LSH path must equal the exact path bit for bit."""
        predictor = Predictor(micro_snapshot, lsh_tables=48, lsh_bits=1)
        X = micro_task.test.X[:12]
        counts = predictor.candidate_counts(X)
        assert np.all(counts == predictor.arch.n_labels)
        assert np.array_equal(predictor.topk_lsh(X, 5), predictor.topk(X, 5))
        assert predictor.recall_at_k(X, 5) == 1.0

    def test_selective_tables_pad_short_rows(self, micro_snapshot, micro_task):
        """Very selective hashes leave rows under k candidates; the output
        must still be rectangular, valid, and duplicate-free."""
        predictor = Predictor(micro_snapshot, lsh_tables=1, lsh_bits=12)
        X = micro_task.test.X[:16]
        k = 8
        counts = predictor.candidate_counts(X)
        assert counts.min() < k  # the padding path is actually exercised
        out = predictor.topk_lsh(X, k)
        assert out.shape == (16, k)
        for row in out:
            assert len(set(row.tolist())) == k
        assert out.min() >= 0 and out.max() < predictor.arch.n_labels

    def test_k_clamped_to_label_count(self, predictor, micro_task):
        X = micro_task.test.X[:3]
        L = predictor.arch.n_labels
        out = predictor.topk_lsh(X, L + 50)
        assert out.shape == (3, L)
        assert np.array_equal(np.sort(out, axis=1)[0], np.arange(L))

    def test_empty_batch(self, predictor, micro_task):
        X = micro_task.test.X[:0]
        assert predictor.topk_lsh(X, 5).shape == (0, 5)
        assert predictor.recall_at_k(X, 5) == 1.0

    def test_bad_k_rejected(self, predictor, micro_task):
        with pytest.raises(ConfigurationError):
            predictor.topk_lsh(micro_task.test.X[:1], 0)

    def test_default_recall_is_useful(self, predictor, micro_task):
        """The tuned default tables must keep most of the exact top-5 even
        on an untrained model (trained models only get easier)."""
        X = micro_task.test.X[:64]
        assert predictor.recall_at_k(X, 5) >= 0.5

    def test_predict_labels_routes_paths(self, predictor, micro_task):
        X = micro_task.test.X[:6]
        assert np.array_equal(
            predictor.predict_labels(X, 5, use_lsh=False),
            predictor.topk(X, 5),
        )
        assert np.array_equal(
            predictor.predict_labels(X, 5, use_lsh=True),
            predictor.topk_lsh(X, 5),
        )

    def test_matches_per_row_reference(self, predictor, micro_task):
        """The batched kernel vs the retained per-row oracle, bit for bit."""
        X = micro_task.test.X[:32]
        assert np.array_equal(
            predictor.topk_lsh(X, 5), predictor.topk_lsh_reference(X, 5)
        )

    def test_bad_probes_rejected(self, micro_snapshot):
        # max_probes = n_bits + 1 (base signature + one flip per bit)
        with pytest.raises(ConfigurationError, match="lsh_probes"):
            Predictor(micro_snapshot, lsh_bits=4, lsh_probes=6)

    def test_probes_expand_candidates(self, micro_snapshot, micro_task):
        X = micro_task.test.X[:16]
        base = Predictor(
            micro_snapshot, lsh_tables=2, lsh_bits=8, lsh_seed=3
        )
        multi = Predictor(
            micro_snapshot, lsh_tables=2, lsh_bits=8, lsh_seed=3,
            lsh_probes=4,
        )
        assert (
            multi.candidate_counts(X).sum() >= base.candidate_counts(X).sum()
        )

    def test_lsh_stats_shares_one_probe(self, predictor, micro_task):
        X = micro_task.test.X[:12]
        out, counts = predictor.lsh_stats(X, 5)
        assert np.array_equal(out, predictor.topk_lsh(X, 5))
        assert np.array_equal(counts, predictor.candidate_counts(X))

    def test_hidden_validates_layer_count_before_forward(
        self, micro_snapshot, micro_task, monkeypatch
    ):
        """A 1-layer predictor must fail with the serve-side error, not a
        forward-pass one — the layer check has to run first."""
        predictor = Predictor(micro_snapshot)
        monkeypatch.setattr(predictor, "_n_layers", 1)
        with pytest.raises(ServeError, match="hidden layer"):
            predictor.hidden(micro_task.test.X[:2])


class TestCrossoverSignal:
    def test_fraction_observation_lifecycle(self, micro_snapshot, micro_task):
        predictor = Predictor(micro_snapshot)
        assert predictor.observed_candidate_fraction() is None
        frac = predictor.calibrate_candidate_fraction(
            micro_task.test.X[:32], max_rows=8
        )
        assert 0.0 < frac <= 1.0
        assert predictor.observed_candidate_fraction() == pytest.approx(frac)

    def test_lsh_calls_update_ewma(self, micro_snapshot, micro_task):
        predictor = Predictor(micro_snapshot)
        predictor.topk_lsh(micro_task.test.X[:8], 5)
        assert predictor.observed_candidate_fraction() is not None


class TestRecall:
    def test_vectorized_recall_matches_per_row_intersection(
        self, predictor, micro_task
    ):
        X = micro_task.test.X[:32]
        exact = predictor.topk(X, 5)
        approx = predictor.topk_lsh(X, 5)
        expected = float(np.mean([
            np.intersect1d(e, a).size / 5.0 for e, a in zip(exact, approx)
        ]))
        assert predictor.recall_at_k(X, 5) == pytest.approx(expected)
