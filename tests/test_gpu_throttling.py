"""Tests for ThrottledProfile fault injection and trainer resilience."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import MultiGPUServer, make_server
from repro.gpu.cost import GpuCostParams
from repro.gpu.profiles import SpeedProfile, ThrottledProfile


class TestThrottledProfile:
    def base(self):
        return SpeedProfile(base=1.0, osc_amplitude=0.0, jitter_amplitude=0.0)

    def test_no_events_is_identity(self):
        prof = ThrottledProfile(self.base())
        assert prof.speed(5.0) == 1.0

    def test_single_event(self):
        prof = ThrottledProfile(self.base(), events=[(2.0, 0.5)])
        assert prof.speed(1.9) == 1.0
        assert prof.speed(2.0) == 0.5
        assert prof.speed(100.0) == 0.5

    def test_recovery_event(self):
        prof = ThrottledProfile(
            self.base(), events=[(2.0, 0.5), (4.0, 1.0)]
        )
        assert prof.speed(3.0) == 0.5
        assert prof.speed(4.5) == 1.0

    def test_base_passthrough(self):
        prof = ThrottledProfile(SpeedProfile(base=0.8, osc_amplitude=0.0,
                                             jitter_amplitude=0.0))
        assert prof.base == 0.8
        assert prof.speed(0.0) == 0.8

    def test_unordered_events_rejected(self):
        with pytest.raises(ConfigurationError):
            ThrottledProfile(self.base(), events=[(3.0, 0.5), (1.0, 0.8)])

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ThrottledProfile(self.base(), events=[(1.0, 0.0)])

    def test_composes_with_oscillation(self):
        noisy = SpeedProfile(base=1.0, osc_amplitude=0.05,
                             jitter_amplitude=0.0, seed=1)
        prof = ThrottledProfile(noisy, events=[(1.0, 0.5)])
        assert prof.speed(2.0) == pytest.approx(0.5 * noisy.speed(2.0))


class TestAdaptiveResilience:
    def test_batch_scaling_reacts_to_mid_run_throttle(self, micro_task):
        """Throttle one GPU mid-run: Algorithm 1 must shrink its batch size
        relative to its pre-throttle level."""
        server = make_server(
            4, heterogeneity="uniform", seed=3,
            cost_params=GpuCostParams.tiny_model_profile(),
        )
        throttle_at = 0.02
        victim = 2
        server.gpus[victim].profile = ThrottledProfile(
            server.gpus[victim].profile, events=[(throttle_at, 0.45)]
        )
        cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=32)
        trainer = AdaptiveSGDTrainer(
            micro_task, server, cfg, hidden=(32,), init_seed=1, data_seed=1,
            eval_samples=64,
        )
        trace = trainer.run(time_budget_s=0.08)
        history = np.asarray(trace.batch_size_history, dtype=float)
        times = [p.time_s for p in trace.points[1:]]
        pre = history[[t < throttle_at for t in times]]
        post = history[[t > throttle_at * 2 for t in times]]
        assert len(pre) and len(post)
        # The throttled GPU's batch size dropped markedly after the event...
        assert post[:, victim].mean() < pre[:, victim].mean() - 4
        # ...and it ends below every healthy GPU's batch size.
        final = history[-1]
        healthy = [final[g] for g in range(4) if g != victim]
        assert final[victim] < min(healthy)
