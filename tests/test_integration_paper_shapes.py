"""Integration tests: the paper's qualitative findings at test scale.

These are scaled-down versions of the benchmark assertions — small enough
for the unit-test suite, but exercising the full pipeline (data generation →
virtual cluster → trainers → traces → analysis) across module boundaries.
"""

import pytest

from repro.core.config import AdaptiveSGDConfig
from repro.data.registry import load_task
from repro.data.synthetic import SyntheticXMLConfig, generate_xml_task
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.tta import default_targets, winner_at_time


@pytest.fixture(scope="module")
def shape_task():
    """A task big enough that compute (not launch overhead) dominates a
    step, so the heterogeneity effects under test are actually visible."""
    return generate_xml_task(SyntheticXMLConfig(
        name="shape", n_features=512, n_labels=512, n_train=2048,
        n_test=512, avg_features_per_sample=24.0, avg_labels_per_sample=3.0,
        seed=0,
    ))


def shape_spec(**overrides):
    defaults = dict(
        dataset="micro",  # ignored: run_experiment receives the task directly
        algorithms=("adaptive", "elastic", "tensorflow", "crossbow"),
        gpu_counts=(1, 4),
        time_budget_s=0.08,
        config=AdaptiveSGDConfig(b_max=64, base_lr=0.3, mega_batch_batches=32),
        eval_samples=128,
        seed=0,
        hidden=(64,),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def fig4_micro_traces(shape_task):
    """One shared 4-method run set (module-scoped)."""
    return run_experiment(shape_spec(), task=shape_task)


class TestFigure4Shapes:
    def test_adaptive_wins_or_ties_best_accuracy(self, fig4_micro_traces):
        adaptive = fig4_micro_traces[("adaptive", 4)]
        best = max(t.best_accuracy for t in fig4_micro_traces.values())
        assert adaptive.best_accuracy >= best - 0.03

    def test_adaptive_outpaces_elastic_in_epochs(self, fig4_micro_traces):
        """No straggler barrier: more data consumed in the same sim time."""
        adaptive = fig4_micro_traces[("adaptive", 4)]
        elastic = fig4_micro_traces[("elastic", 4)]
        assert adaptive.total_epochs >= elastic.total_epochs

    def test_tensorflow_is_slowest_in_throughput(self, fig4_micro_traces):
        tf = fig4_micro_traces[("tensorflow", 4)]
        for key in (("adaptive", 4), ("elastic", 4), ("crossbow", 4)):
            assert tf.total_epochs < fig4_micro_traces[key].total_epochs

    def test_adaptive_leads_at_mid_horizon(self, fig4_micro_traces):
        four_gpu = {
            key[0]: trace
            for key, trace in fig4_micro_traces.items()
            if key[1] == 4
        }
        label, _ = winner_at_time(four_gpu, 0.06)
        assert label in ("adaptive", "elastic")

    def test_single_gpu_adaptive_equals_elastic_exactly(self, fig4_micro_traces):
        """§V-B: 'Elastic and Adaptive SGD ... are identical' on one GPU."""
        adaptive = fig4_micro_traces[("adaptive", 1)]
        elastic = fig4_micro_traces[("elastic", 1)]
        accs_a = [p.accuracy for p in adaptive.points]
        accs_e = [p.accuracy for p in elastic.points]
        n = min(len(accs_a), len(accs_e))
        assert n > 3
        assert accs_a[:n] == pytest.approx(accs_e[:n], abs=1e-7)

    def test_all_methods_share_time_zero_accuracy(self, fig4_micro_traces):
        initial = {t.points[0].accuracy for t in fig4_micro_traces.values()}
        assert len(initial) == 1


class TestScalabilityShape:
    def test_more_gpus_not_slower_to_mid_target(self, shape_task):
        spec = shape_spec(algorithms=("adaptive",))
        traces = run_experiment(spec, task=shape_task)
        one, four = traces[("adaptive", 1)], traces[("adaptive", 4)]
        target = 0.5 * max(one.best_accuracy, four.best_accuracy)
        t1 = one.time_to_accuracy(target)
        t4 = four.time_to_accuracy(target)
        assert t4 is not None
        assert t1 is None or t4 <= t1 * 1.1


class TestHeterogeneityAblation:
    def test_adaptive_advantage_comes_from_heterogeneity(self, shape_task):
        """On a *uniform* server Adaptive and Elastic throughput converge;
        on the heterogeneous server Adaptive pulls ahead."""
        from repro.baselines.elastic import ElasticSGDTrainer
        from repro.core.adaptive import AdaptiveSGDTrainer

        cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.3, mega_batch_batches=32)

        def epochs(cls, mode):
            server = make_server(
                4, heterogeneity=mode, seed=5,
                cost_params=GpuCostParams.tiny_model_profile(),
            )
            trainer = cls(
                shape_task, server, cfg, hidden=(64,), init_seed=7,
                data_seed=3, eval_samples=128,
            )
            return trainer.run(time_budget_s=0.05).total_epochs

        het_gain = epochs(AdaptiveSGDTrainer, "het") / epochs(
            ElasticSGDTrainer, "het"
        )
        uni_gain = epochs(AdaptiveSGDTrainer, "uniform") / epochs(
            ElasticSGDTrainer, "uniform"
        )
        assert het_gain > uni_gain - 0.02
        assert het_gain > 1.0

    def test_run_experiment_deterministic_end_to_end(self, shape_task):
        spec = shape_spec(
            algorithms=("adaptive",), gpu_counts=(2,), time_budget_s=0.02,
        )
        a = run_experiment(spec, task=shape_task)[("adaptive", 2)]
        b = run_experiment(spec, task=shape_task)[("adaptive", 2)]
        assert [p.accuracy for p in a.points] == [p.accuracy for p in b.points]
        assert a.batch_size_history == b.batch_size_history
