"""Tests for repro.core.config — the §V-A hyperparameter derivation rules."""

import pytest

from repro.core.config import AdaptiveSGDConfig, linear_scaled_lr
from repro.exceptions import ConfigurationError


class TestLinearScaledLr:
    def test_proportionality(self):
        assert linear_scaled_lr(0.1, 128, 64) == pytest.approx(0.05)
        assert linear_scaled_lr(0.1, 128, 256) == pytest.approx(0.2)

    def test_identity_at_base(self):
        assert linear_scaled_lr(0.3, 128, 128) == 0.3

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            linear_scaled_lr(0.0, 128, 64)
        with pytest.raises(ConfigurationError):
            linear_scaled_lr(0.1, 0, 64)


class TestDerivationRules:
    def test_b_min_is_b_max_over_8(self):
        """'b_min is set to a value 8 times smaller than b_max'."""
        assert AdaptiveSGDConfig(b_max=256).b_min == 32
        assert AdaptiveSGDConfig(b_max=64).b_min == 8

    def test_beta_is_half_b_min(self):
        """'the batch size scaling parameter beta to half of b_min'."""
        cfg = AdaptiveSGDConfig(b_max=256)
        assert cfg.beta == cfg.b_min / 2

    def test_mega_batch_is_100_batches(self):
        """'the global model is updated only after a mega-batch having the
        size of 100 batches'."""
        cfg = AdaptiveSGDConfig(b_max=256)
        assert cfg.mega_batch_batches == 100
        assert cfg.mega_batch_size == 100 * 256

    def test_paper_constant_defaults(self):
        cfg = AdaptiveSGDConfig()
        assert cfg.gamma == 0.9       # momentum per the literature
        assert cfg.delta == 0.1       # perturbation factor default
        assert cfg.pert_thr == 0.1    # regularization threshold default

    def test_lr_for_batch_linear(self):
        cfg = AdaptiveSGDConfig(b_max=128, base_lr=0.4)
        assert cfg.lr_for_batch(64) == pytest.approx(0.2)
        assert cfg.lr_for_batch(128) == pytest.approx(0.4)

    def test_explicit_overrides_respected(self):
        cfg = AdaptiveSGDConfig(b_max=256, b_min=64, beta=10.0)
        assert cfg.b_min == 64 and cfg.beta == 10.0

    def test_small_b_max_keeps_b_min_at_least_1(self):
        assert AdaptiveSGDConfig(b_max=4).b_min == 1

    def test_expected_updates_per_gpu(self):
        cfg = AdaptiveSGDConfig(b_max=64, mega_batch_batches=40)
        assert cfg.expected_updates_per_gpu == 40.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(b_max=0),
        dict(base_lr=0.0),
        dict(mega_batch_batches=0),
        dict(gamma=1.5),
        dict(delta=-0.1),
        dict(pert_thr=0.0),
        dict(b_min=300, b_max=256),
        dict(beta=0.0),
        dict(merge_weighting="bogus"),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveSGDConfig(**kwargs)
