"""Tests for repro.core.merging — Algorithm 2 semantics, line by line."""

import numpy as np
import pytest

from repro.core.merging import compute_merge_weights, merge_models
from repro.exceptions import ConfigurationError, ModelStateError
from repro.sparse.model_state import ModelState

SPEC = [("W", (8,))]


def state_of(values):
    return ModelState.from_vector(
        SPEC, np.full(8, float(values), dtype=np.float32)
    )


class TestNormalizationWeights:
    def test_equal_updates_weight_by_batch_size(self):
        """Line 2: u_i all equal -> alpha_i = b_i / sum(b)."""
        w = compute_merge_weights(
            [100, 50, 50], [7, 7, 7], [0.01] * 3,
            pert_thr=0.1, delta=0.1, enable_perturbation=False,
        )
        assert w.branch == "batch_size"
        assert w.alphas == pytest.approx((0.5, 0.25, 0.25))

    def test_unequal_updates_weight_by_updates(self):
        """Line 3: otherwise alpha_i = u_i / sum(u)."""
        w = compute_merge_weights(
            [64, 64], [6, 4], [0.01, 0.01],
            pert_thr=0.1, delta=0.1, enable_perturbation=False,
        )
        assert w.branch == "updates"
        assert w.alphas == pytest.approx((0.6, 0.4))

    def test_weights_normalized_without_perturbation(self):
        w = compute_merge_weights(
            [10, 30, 60], [3, 3, 3], [0.01] * 3,
            pert_thr=0.1, delta=0.1, enable_perturbation=False,
        )
        assert sum(w.alphas) == pytest.approx(1.0)

    def test_uniform_weighting_option(self):
        w = compute_merge_weights(
            [10, 90], [1, 9], [0.01, 0.01],
            pert_thr=0.1, delta=0.1, weighting="uniform",
            enable_perturbation=False,
        )
        assert w.branch == "uniform"
        assert w.alphas[0] == pytest.approx(w.alphas[1])

    def test_uniform_weighting_is_orthogonal_to_perturbation(self):
        # Perturbation still applies on top of uniform weights when enabled.
        w = compute_merge_weights(
            [10, 90], [1, 9], [0.01, 0.01],
            pert_thr=0.1, delta=0.1, weighting="uniform",
        )
        assert w.perturbed
        assert w.alphas == pytest.approx((0.45, 0.55))

    def test_updates_times_batch_weighting(self):
        w = compute_merge_weights(
            [100, 50], [2, 4], [0.01, 0.01],
            pert_thr=0.1, delta=0.1, enable_perturbation=False,
            weighting="updates_times_batch",
        )
        assert w.alphas == pytest.approx((0.5, 0.5))  # 200 vs 200


class TestPerturbation:
    def test_fires_when_all_replicas_regularized(self):
        """Lines 4-6: boost argmax-u by (1+delta), damp argmin-u by (1-delta)."""
        w = compute_merge_weights(
            [64, 64, 64], [6, 5, 4], [0.05, 0.02, 0.01],
            pert_thr=0.1, delta=0.1,
        )
        assert w.perturbed
        assert w.boosted == 0 and w.damped == 2
        base = (6 / 15, 5 / 15, 4 / 15)
        assert w.alphas[0] == pytest.approx(base[0] * 1.1)
        assert w.alphas[1] == pytest.approx(base[1])
        assert w.alphas[2] == pytest.approx(base[2] * 0.9)

    def test_gate_blocks_when_any_replica_unregularized(self):
        """Line 4 requires the norm condition for ALL replicas."""
        w = compute_merge_weights(
            [64, 64], [6, 4], [0.05, 0.5],  # second replica over threshold
            pert_thr=0.1, delta=0.1,
        )
        assert not w.perturbed
        assert sum(w.alphas) == pytest.approx(1.0)

    def test_denormalization_when_updates_unequal(self):
        w = compute_merge_weights(
            [64, 64], [6, 4], [0.01, 0.01], pert_thr=0.1, delta=0.1,
        )
        assert w.perturbed
        assert sum(w.alphas) == pytest.approx(1.0 + 0.1 * (0.6 - 0.4))

    def test_tied_updates_perturb_distinct_replicas_sum_preserved(self):
        """Tie-break: boost the first, damp the last — never the same one.

        With equal updates the batch-size branch runs; boosting and damping
        equal-weight replicas by ±delta keeps the sum at exactly 1.
        """
        w = compute_merge_weights(
            [64, 64, 64], [5, 5, 5], [0.01] * 3, pert_thr=0.1, delta=0.1,
        )
        assert w.perturbed
        assert w.boosted == 0 and w.damped == 2
        assert sum(w.alphas) == pytest.approx(1.0)

    def test_single_replica_never_perturbed(self):
        w = compute_merge_weights(
            [64], [5], [0.01], pert_thr=0.1, delta=0.1,
        )
        assert not w.perturbed
        assert w.alphas == (1.0,)

    def test_disabled_perturbation(self):
        w = compute_merge_weights(
            [64, 64], [6, 4], [0.01, 0.01],
            pert_thr=0.1, delta=0.1, enable_perturbation=False,
        )
        assert not w.perturbed

    def test_renormalize_keeps_sum_one_and_relative_boost(self):
        base = compute_merge_weights(
            [64, 64], [6, 4], [0.01, 0.01],
            pert_thr=0.1, delta=0.1, enable_perturbation=False,
        )
        w = compute_merge_weights(
            [64, 64], [6, 4], [0.01, 0.01],
            pert_thr=0.1, delta=0.1, renormalize=True,
        )
        assert w.perturbed
        assert sum(w.alphas) == pytest.approx(1.0)
        # The boosted replica's relative share still grew.
        assert w.alphas[0] / w.alphas[1] > base.alphas[0] / base.alphas[1]

    def test_threshold_boundary_is_strict(self):
        # norm == pert_thr must NOT fire (strictly below per the paper).
        w = compute_merge_weights(
            [64, 64], [6, 4], [0.1, 0.05], pert_thr=0.1, delta=0.1,
        )
        assert not w.perturbed


class TestMergeModels:
    def _weights(self, alphas):
        from repro.core.merging import MergeWeights

        return MergeWeights(alphas=tuple(alphas), branch="test", perturbed=False)

    def test_momentum_update_rule(self):
        """Lines 8-9: w' = sum(alpha w_i) + gamma (w - w_p); w_p <- w."""
        replicas = [state_of(2.0), state_of(4.0)]
        global_model = state_of(1.0)
        prev_global = state_of(0.5)
        merge_models(
            replicas, self._weights([0.5, 0.5]), global_model, prev_global,
            gamma=0.9,
        )
        # merged = 3.0; momentum = 0.9 * (1.0 - 0.5) = 0.45 -> w' = 3.45.
        assert np.allclose(global_model.vector, 3.45)
        assert np.allclose(prev_global.vector, 1.0)  # w_p became old w

    def test_zero_gamma_is_plain_average(self):
        replicas = [state_of(2.0), state_of(4.0)]
        global_model = state_of(100.0)
        prev_global = state_of(-7.0)
        merge_models(
            replicas, self._weights([0.25, 0.75]), global_model, prev_global,
            gamma=0.0,
        )
        assert np.allclose(global_model.vector, 0.25 * 2 + 0.75 * 4)

    def test_precomputed_reduction_used(self):
        replicas = [state_of(2.0), state_of(4.0)]
        reduced = state_of(-1.0)  # deliberately inconsistent
        global_model = state_of(0.0)
        prev_global = state_of(0.0)
        merge_models(
            replicas, self._weights([0.5, 0.5]), global_model, prev_global,
            gamma=0.0, reduced=reduced,
        )
        assert np.allclose(global_model.vector, -1.0)

    def test_max_l2_reported(self):
        replicas = [state_of(1.0), state_of(3.0)]
        result = merge_models(
            replicas, self._weights([0.5, 0.5]), state_of(0.0), state_of(0.0),
            gamma=0.0,
        )
        assert result.max_l2_per_param == pytest.approx(
            replicas[1].l2_norm_per_param()
        )

    def test_idempotent_on_identical_replicas_without_momentum(self):
        # Merging identical replicas with normalized weights returns them.
        replicas = [state_of(5.0), state_of(5.0)]
        global_model = state_of(5.0)
        prev_global = state_of(5.0)
        merge_models(
            replicas, self._weights([0.5, 0.5]), global_model, prev_global,
            gamma=0.9,
        )
        assert np.allclose(global_model.vector, 5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            merge_models([], self._weights([]), state_of(0), state_of(0), gamma=0.5)
        with pytest.raises(ModelStateError):
            merge_models(
                [state_of(1.0)], self._weights([0.5, 0.5]), state_of(0),
                state_of(0), gamma=0.5,
            )
        with pytest.raises(ConfigurationError):
            merge_models(
                [state_of(1.0)], self._weights([1.0]), state_of(0), state_of(0),
                gamma=1.0,
            )


class TestWeightValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_merge_weights([64], [5, 5], [0.01], pert_thr=0.1, delta=0.1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_merge_weights([], [], [], pert_thr=0.1, delta=0.1)

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_merge_weights([0], [5], [0.01], pert_thr=0.1, delta=0.1)

    def test_unknown_weighting_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_merge_weights(
                [64], [5], [0.01], pert_thr=0.1, delta=0.1, weighting="nope"
            )
