"""Equivalence tests for the CSR row-gather kernel.

The gather must be **bit-for-bit** identical to scipy's fancy indexing
(``X[idx]``) — the batching layer swapped one for the other, so any
divergence would silently change every trainer's numerics.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.batching import Batch, BatchCursor, static_batches
from repro.data.dataset import SparseDataset
from repro.perf.gather import RowGatherer, gather_rows


def make_matrix(n_rows=64, n_cols=200, density=0.05, seed=0, empty_rows=()):
    rng = np.random.default_rng(seed)
    m = sp.random(
        n_rows, n_cols, density=density, format="csr",
        dtype=np.float32, random_state=rng,
    )
    if len(empty_rows):
        lil = m.tolil()
        for r in empty_rows:
            lil[r] = 0
        m = lil.tocsr()
    m.sum_duplicates()
    m.sort_indices()
    return m


def assert_csr_identical(got: sp.csr_matrix, want: sp.csr_matrix):
    assert got.shape == want.shape
    assert np.array_equal(np.asarray(got.indptr), np.asarray(want.indptr))
    assert np.array_equal(np.asarray(got.indices), np.asarray(want.indices))
    assert np.array_equal(np.asarray(got.data), np.asarray(want.data))


class TestGatherRows:
    def test_matches_fancy_indexing(self):
        m = make_matrix()
        idx = np.array([3, 0, 17, 63, 5], dtype=np.int64)
        assert_csr_identical(gather_rows(m, idx), m[idx])

    def test_duplicate_indices(self):
        m = make_matrix(seed=1)
        idx = np.array([7, 7, 7, 2, 7], dtype=np.int64)
        assert_csr_identical(gather_rows(m, idx), m[idx])

    def test_empty_rows_in_selection(self):
        m = make_matrix(seed=2, empty_rows=(0, 10, 11, 63))
        idx = np.array([10, 0, 5, 11, 63, 10], dtype=np.int64)
        assert_csr_identical(gather_rows(m, idx), m[idx])

    def test_all_rows_permuted(self):
        m = make_matrix(seed=3)
        idx = np.random.default_rng(4).permutation(m.shape[0])
        assert_csr_identical(gather_rows(m, idx), m[idx])

    def test_zero_rows(self):
        m = make_matrix(seed=5)
        idx = np.empty(0, dtype=np.int64)
        assert_csr_identical(gather_rows(m, idx), m[idx])

    def test_fully_empty_matrix(self):
        m = sp.csr_matrix((8, 30), dtype=np.float32)
        idx = np.array([1, 4, 4, 0], dtype=np.int64)
        assert_csr_identical(gather_rows(m, idx), m[idx])

    def test_result_is_canonical(self):
        m = make_matrix(seed=6)
        out = gather_rows(m, np.array([9, 1, 9]))
        assert out.has_sorted_indices
        # Spot-check: scipy ops on the result behave normally.
        dense = out @ np.ones((m.shape[1], 3), dtype=np.float32)
        assert dense.shape == (3, 3)


class TestRowGatherer:
    def test_matches_fancy_indexing_repeatedly(self):
        m = make_matrix(seed=7)
        g = RowGatherer(m)
        rng = np.random.default_rng(8)
        for _ in range(10):
            idx = rng.integers(0, m.shape[0], size=rng.integers(1, 40))
            assert_csr_identical(g.gather(idx), m[idx])

    def test_slot_reuse_when_batch_released(self):
        m = make_matrix(seed=9)
        g = RowGatherer(m)
        for _ in range(20):
            out = g.gather(np.arange(16))
            del out
        assert g.n_slots == 1

    def test_live_batches_are_not_corrupted(self):
        """Multiple concurrently-live batches (the multi-GPU trainer case)."""
        m = make_matrix(seed=10)
        g = RowGatherer(m)
        idx_a = np.array([1, 2, 3, 4])
        idx_b = np.array([30, 31, 32, 33])
        a = g.gather(idx_a)
        b = g.gather(idx_b)  # must not overwrite a's buffers
        assert_csr_identical(a, m[idx_a])
        assert_csr_identical(b, m[idx_b])
        assert g.n_slots == 2


class TestBatchingIntegration:
    def make_dataset(self, n=50, seed=11):
        X = make_matrix(n_rows=n, n_cols=120, seed=seed, empty_rows=(2, 40))
        rng = np.random.default_rng(seed + 1)
        rows = np.repeat(np.arange(n), 2)
        cols = rng.integers(0, 37, size=2 * n)
        Y = sp.csr_matrix(
            (np.ones(2 * n, np.float32), (rows, cols)), shape=(n, 37)
        )
        Y.sum_duplicates()
        Y.data[:] = 1.0
        return SparseDataset(X=X, Y=Y, name="gather-test")

    def test_next_batch_matches_reference_slicing(self):
        ds = self.make_dataset()
        cursor = BatchCursor(ds, seed=3)
        for _ in range(12):  # crosses the epoch boundary: 12 * 8 > 50
            batch = cursor.next_batch(8)
            assert_csr_identical(batch.X, ds.X[batch.indices])
            assert_csr_identical(batch.Y, ds.Y[batch.indices])
            assert batch.nnz == ds.X[batch.indices].nnz

    def test_epoch_boundary_reshuffle_preserved(self):
        """Same seed => same index sequence as two fresh cursors."""
        ds = self.make_dataset()
        a = BatchCursor(ds, seed=5)
        b = BatchCursor(ds, seed=5)
        seq_a = [a.next_batch(7).indices for _ in range(20)]
        seq_b = [b.next_batch(7).indices for _ in range(20)]
        for ia, ib in zip(seq_a, seq_b):
            assert np.array_equal(ia, ib)
        # Every epoch worth of indices covers the dataset exactly once.
        flat = np.concatenate(seq_a)[:ds.n_samples]
        assert np.array_equal(np.sort(flat), np.arange(ds.n_samples))

    def test_static_batches_match_reference(self):
        ds = self.make_dataset(seed=13)
        for batch in static_batches(ds, 16, seed=2):
            assert_csr_identical(batch.X, ds.X[batch.indices])
            assert_csr_identical(batch.Y, ds.Y[batch.indices])

    def test_batch_nnz_precomputed(self):
        ds = self.make_dataset(seed=14)
        idx = np.array([0, 2, 7])  # includes an empty row
        assert ds.nnz_of(idx) == ds.X[idx].nnz
        batch = Batch(X=ds.X[idx], Y=ds.Y[idx], indices=idx)
        assert batch.nnz == ds.X[idx].nnz  # derived when not supplied
