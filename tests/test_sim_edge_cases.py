"""Edge-case tests for the simulation engine beyond the basic semantics."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import URGENT, Event
from repro.sim.resources import Resource, Store


class TestSchedulingOrder:
    def test_urgent_priority_precedes_normal_at_equal_time(self):
        env = Environment()
        order = []
        normal = env.event()
        urgent = env.event()
        normal.callbacks.append(lambda e: order.append("normal"))
        urgent.callbacks.append(lambda e: order.append("urgent"))
        normal.succeed()                 # scheduled first...
        urgent.succeed(priority=URGENT)  # ...but urgent jumps the queue
        env.run()
        assert order == ["urgent", "normal"]

    def test_condition_value_available_same_timestamp(self):
        """AllOf fires URGENT so waiters resume at the same sim time as the
        last child, not an instant later."""
        env = Environment()

        def proc():
            yield env.all_of([env.timeout(1), env.timeout(1)])
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 1.0

    def test_zero_delay_chain_makes_no_time_progress(self):
        env = Environment()

        def proc():
            for _ in range(100):
                yield env.timeout(0.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 0.0


class TestRunUntil:
    def test_frozen_process_resumes_on_continued_run(self):
        env = Environment()

        def proc():
            yield env.timeout(10)
            return "done"

        p = env.process(proc())
        env.run(until=5.0)
        assert p.is_alive and env.now == 5.0
        env.run()
        assert p.value == "done" and env.now == 10.0

    def test_until_exactly_at_event_time_fires_it(self):
        env = Environment()
        fired = []
        t = env.timeout(3.0)
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=3.0)
        assert fired == [3.0]


class TestProcessLifecycles:
    def test_immediate_return_process(self):
        env = Environment()

        def proc():
            return 5
            yield  # pragma: no cover - makes it a generator

        p = env.process(proc())
        env.run()
        assert p.value == 5

    def test_many_waiters_on_one_process(self):
        env = Environment()

        def producer():
            yield env.timeout(2)
            return "result"

        prod = env.process(producer())
        outputs = []

        def consumer():
            value = yield prod
            outputs.append((env.now, value))

        for _ in range(5):
            env.process(consumer())
        env.run()
        assert outputs == [(2.0, "result")] * 5

    def test_exhausted_generator_completes_immediately(self):
        """Re-registering a spent generator yields an immediately-finished
        process with value None (StopIteration on first resume) — documented
        behavior, not silent hanging."""
        env = Environment()

        def proc():
            yield env.timeout(1)
            return "first"

        gen = proc()
        first = env.process(gen)
        env.run()
        assert first.value == "first"
        env2 = Environment()
        reused = env2.process(gen)
        env2.run()
        assert not reused.is_alive
        assert reused.value is None


class TestResourceStoreInterplay:
    def test_resource_released_inside_condition_wait(self):
        """A worker holding a resource across an all_of must still block
        competitors until it explicitly releases."""
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder():
            yield res.request()
            order.append(("hold", env.now))
            yield env.all_of([env.timeout(2), env.timeout(3)])
            res.release()

        def contender():
            yield env.timeout(0.5)
            yield res.request()
            order.append(("contend", env.now))
            res.release()

        env.process(holder())
        env.process(contender())
        env.run()
        assert order == [("hold", 0.0), ("contend", 3.0)]

    def test_store_as_work_queue(self):
        """The dispatch pattern the dynamic scheduler's design is based on:
        items flow to whichever consumer is free first."""
        env = Environment()
        store = Store(env)
        done = []

        def consumer(name, speed):
            while True:
                item = yield store.get()
                if item is None:
                    return
                yield env.timeout(speed)
                done.append((name, item, env.now))

        env.process(consumer("fast", 1.0))
        env.process(consumer("slow", 3.0))
        for i in range(5):
            store.put(i)
        store.put(None)
        store.put(None)
        env.run()
        fast_items = [d for d in done if d[0] == "fast"]
        slow_items = [d for d in done if d[0] == "slow"]
        assert len(fast_items) > len(slow_items)  # speed wins work
        assert len(done) == 5
