"""Tests for repro.telemetry.diagnose — the convergence-finding battery."""

import pytest

from repro.telemetry.analyze import StragglerReport
from repro.telemetry.diagnose import (
    Finding,
    detect_batch_size_anomalies,
    detect_loss_anomalies,
    detect_lr_blowup,
    detect_staleness_growth,
    detect_straggler,
    diagnose,
)
from repro.telemetry.events import SpanEvent
from repro.telemetry.trace_data import RunData


def run_with(samples, spans=()):
    return RunData(index=0, meta={"algorithm": "unit"},
                   spans=list(spans), samples=dict(samples))


class TestFinding:
    def test_invalid_severity_raises(self):
        with pytest.raises(ValueError):
            Finding(detector="x", severity="fatal", message="m", run=0)

    def test_as_dict_round_trips(self):
        f = Finding(detector="x", severity="info", message="m", run=1,
                    device=2, t_start=0.5, t_end=1.0, evidence={"k": 3})
        assert f.as_dict()["evidence"] == {"k": 3}
        assert f.as_dict()["severity"] == "info"


class TestLossAnomalies:
    def test_leading_nan_checkpoint_is_legitimate(self):
        run = run_with({"loss": [(0.0, float("nan")), (1.0, 1.0),
                                 (2.0, 0.8)]})
        detectors = {f.detector for f in detect_loss_anomalies(run)}
        assert "loss_nonfinite" not in detectors

    def test_nonfinite_after_training_started_is_critical(self):
        run = run_with({"loss": [(0.0, 1.0), (1.0, float("nan"))]})
        (f,) = [f for f in detect_loss_anomalies(run)
                if f.detector == "loss_nonfinite"]
        assert f.severity == "critical"
        assert f.t_start == 1.0

    def test_divergence_warning_and_critical(self):
        warn = run_with({"loss": [(0.0, 1.0), (1.0, 0.5), (2.0, 1.5)]})
        (f,) = [f for f in detect_loss_anomalies(warn)
                if f.detector == "loss_divergence"]
        assert f.severity == "warning"      # 3x its minimum
        crit = run_with({"loss": [(0.0, 1.0), (1.0, 0.5), (2.0, 2.5)]})
        (f,) = [f for f in detect_loss_anomalies(crit)
                if f.detector == "loss_divergence"]
        assert f.severity == "critical"     # 5x its minimum

    def test_plateau_is_info(self):
        run = run_with({"loss": [(t, 1.0) for t in range(6)]})
        (f,) = [f for f in detect_loss_anomalies(run)
                if f.detector == "loss_plateau"]
        assert f.severity == "info"

    def test_healthy_descent_is_clean(self):
        run = run_with({"loss": [(0.0, 1.0), (1.0, 0.6), (2.0, 0.35),
                                 (3.0, 0.2)]})
        assert detect_loss_anomalies(run) == []

    def test_no_loss_series(self):
        assert detect_loss_anomalies(run_with({})) == []


class TestBatchSizeAnomalies:
    def test_oscillation_flagged(self):
        series = [(float(t), 64.0 if t % 2 == 0 else 128.0)
                  for t in range(8)]
        run = run_with({"gpu0/batch_size": series})
        detectors = [f.detector for f in detect_batch_size_anomalies(run)]
        assert "batch_size_oscillation" in detectors

    def test_saturation_at_observed_rail(self):
        run = run_with({
            "gpu0/batch_size": [(0.0, 64.0)] + [(float(t), 128.0)
                                                for t in range(1, 8)],
        })
        clamps = [f for f in detect_batch_size_anomalies(run)
                  if f.detector == "batch_size_clamp"]
        assert clamps and clamps[0].evidence["rail"] == "b_max"

    def test_explicit_rails(self):
        run = run_with({
            "gpu0/batch_size": [(float(t), 32.0) for t in range(6)]
            + [(6.0, 48.0)],
        })
        clamps = [f for f in detect_batch_size_anomalies(run, b_min=32.0)
                  if f.detector == "batch_size_clamp"]
        assert clamps and clamps[0].evidence["rail"] == "b_min"

    def test_static_batch_algorithm_is_clean(self):
        run = run_with({
            "gpu0/batch_size": [(float(t), 64.0) for t in range(10)],
            "gpu1/batch_size": [(float(t), 64.0) for t in range(10)],
        })
        assert detect_batch_size_anomalies(run) == []

    def test_too_few_points_skipped(self):
        run = run_with({"gpu0/batch_size": [(0.0, 64.0), (1.0, 128.0)]})
        assert detect_batch_size_anomalies(run) == []


class TestLrBlowup:
    def test_blowup_is_critical(self):
        run = run_with({"gpu0/lr": [(0.0, 0.1), (1.0, 2.0)]})
        (f,) = detect_lr_blowup(run)
        assert f.severity == "critical" and f.device == 0
        assert f.evidence["ratio"] == pytest.approx(20.0)

    def test_stable_lr_is_clean(self):
        run = run_with({"gpu0/lr": [(0.0, 0.1), (1.0, 0.12)]})
        assert detect_lr_blowup(run) == []


class TestStalenessGrowth:
    def test_growth_flagged(self):
        series = [(float(t), 1.0) for t in range(4)] \
            + [(float(t), 8.0) for t in range(4, 8)]
        run = run_with({"staleness": series})
        (f,) = detect_staleness_growth(run)
        assert f.severity == "warning"

    def test_flat_staleness_is_clean(self):
        run = run_with({"staleness": [(float(t), 2.0) for t in range(8)]})
        assert detect_staleness_growth(run) == []


class TestStragglerBridge:
    def test_straggler_and_skew_findings(self):
        report = StragglerReport(
            run=0, label="unit", straggler=2,
            reason="gpu2 is 40.0% slower per sample than the fastest device",
            heterogeneity_index=0.4,
            update_counts={0: 100.0, 2: 50.0}, update_balance=0.5,
        )
        findings = detect_straggler(run_with({}), report=report)
        detectors = [f.detector for f in findings]
        assert detectors == ["straggler", "update_skew"]
        assert findings[0].device == 2

    def test_balanced_run_is_clean(self):
        report = StragglerReport(run=0, label="unit",
                                 update_counts={0: 10.0, 1: 10.0},
                                 update_balance=1.0)
        assert detect_straggler(run_with({}), report=report) == []


class TestDiagnose:
    def test_sorted_most_severe_first(self):
        run = run_with({
            "loss": [(0.0, 1.0), (1.0, float("nan")), (2.0, 1.0),
                     (3.0, 1.0), (4.0, 1.0)],
            "gpu0/lr": [(0.0, 0.1), (1.0, 5.0)],
        })
        findings = diagnose(run)
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities, key=("info", "warning", "critical").index,
            reverse=True,
        )
        assert severities[0] == "critical"

    def test_healthy_run_has_no_findings(self):
        run = run_with(
            {"loss": [(0.0, 1.0), (1.0, 0.5), (2.0, 0.25), (3.0, 0.1)]},
            spans=[SpanEvent(name="run", ts=0.0, dur=3.0, run=0,
                             device=None, args={})],
        )
        assert diagnose(run) == []
