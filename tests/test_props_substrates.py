"""Property-based tests for the substrates: collectives, model states,
batching, loss, and libSVM round-trips."""

import io

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.comm.halving_doubling import HalvingDoublingAllReduce
from repro.comm.ring import RingAllReduce
from repro.comm.tree import TreeAllReduce
from repro.data.batching import MegaBatchAccountant
from repro.sparse.loss import softmax, softmax_cross_entropy
from repro.sparse.model_state import ModelState, weighted_average

# ---------------------------------------------------------------------------
# Collectives: every schedule == the reference weighted sum.
# ---------------------------------------------------------------------------

operand_sets = st.integers(min_value=1, max_value=7).flatmap(
    lambda n: st.tuples(
        st.integers(min_value=1, max_value=97),
        st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=n, max_size=n,
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
)


@pytest.mark.parametrize("algo_factory", [
    lambda n: RingAllReduce(1),
    lambda n: RingAllReduce(n),
    lambda n: TreeAllReduce(),
    lambda n: HalvingDoublingAllReduce(),
], ids=["ring-1", "ring-n", "tree", "halving-doubling"])
class TestAllReduceEquivalence:
    @given(operand_sets)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_weighted_sum(self, algo_factory, operands):
        size, weights, seed = operands
        n = len(weights)
        rng = np.random.default_rng(seed)
        vectors = [
            rng.normal(size=size).astype(np.float32) for _ in range(n)
        ]
        got = algo_factory(n).reduce(vectors, weights)
        want = sum(
            np.float64(w) * v.astype(np.float64)
            for w, v in zip(weights, vectors)
        )
        assert np.allclose(got, want, atol=1e-3, rtol=1e-4)


# ---------------------------------------------------------------------------
# Model state algebra.
# ---------------------------------------------------------------------------

vectors_35 = hnp.arrays(
    dtype=np.float32,
    shape=(35,),
    elements=st.floats(
        min_value=-100, max_value=100, allow_nan=False, width=32
    ),
)

SPEC = [("W1", (5, 6)), ("b1", (5,))]


class TestModelStateProperties:
    @given(vectors_35, vectors_35, st.floats(min_value=-3, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_axpy_matches_numpy(self, a, b, alpha):
        sa = ModelState.from_vector(SPEC, a.copy())
        sb = ModelState.from_vector(SPEC, b.copy())
        expected = a + np.float32(alpha) * b
        sa.add_scaled(sb, alpha)
        assert np.allclose(sa.vector, expected, rtol=1e-5, atol=1e-4)

    @given(vectors_35)
    @settings(max_examples=100, deadline=None)
    def test_norm_matches_numpy(self, a):
        state = ModelState.from_vector(SPEC, a.copy())
        assert state.l2_norm() == pytest.approx(
            float(np.linalg.norm(a.astype(np.float64))), rel=1e-6, abs=1e-6
        )

    @given(st.lists(vectors_35, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_weighted_average_of_equal_weights_is_mean(self, vecs):
        states = [ModelState.from_vector(SPEC, v.copy()) for v in vecs]
        n = len(states)
        merged = weighted_average(states, [1.0 / n] * n)
        expected = np.mean(np.stack(vecs), axis=0)
        assert np.allclose(merged.vector, expected, atol=1e-3)

    @given(vectors_35)
    @settings(max_examples=50, deadline=None)
    def test_views_cover_vector_exactly(self, a):
        state = ModelState.from_vector(SPEC, a.copy())
        reconstructed = np.concatenate(
            [state[name].ravel() for name, _ in state.spec]
        )
        assert np.array_equal(reconstructed, state.vector)


# ---------------------------------------------------------------------------
# Loss function.
# ---------------------------------------------------------------------------

class TestLossProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_loss_nonnegative_and_grad_rows_zero_sum(self, n, L, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(scale=3.0, size=(n, L)).astype(np.float32)
        labels_per_row = rng.integers(1, min(L, 4) + 1, size=n)
        rows = np.repeat(np.arange(n), labels_per_row)
        cols = np.concatenate([
            rng.choice(L, size=k, replace=False) for k in labels_per_row
        ])
        Y = sp.csr_matrix(
            (np.ones(len(rows), dtype=np.float32), (rows, cols)), shape=(n, L)
        )
        loss, grad = softmax_cross_entropy(logits, Y)
        assert loss >= 0.0
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-5)
        assert np.isfinite(grad).all()

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=-50, max_value=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_softmax_shift_invariance(self, n, L, seed, shift):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, L)).astype(np.float64)
        assert np.allclose(
            softmax(logits + shift), softmax(logits), atol=1e-8
        )


# ---------------------------------------------------------------------------
# Mega-batch accounting.
# ---------------------------------------------------------------------------

class TestAccountantProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=80),
    )
    @settings(max_examples=100, deadline=None)
    def test_charges_never_exceed_budget(self, budget, requests):
        acc = MegaBatchAccountant(budget)
        consumed = 0
        for req in requests:
            size = acc.clamp(req)
            if size == 0:
                assert acc.exhausted
                break
            acc.charge(size)
            consumed += size
            assert consumed <= budget
        assert acc.consumed == consumed
        assert acc.consumed <= budget
