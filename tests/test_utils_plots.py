"""Tests for repro.utils.plots — ASCII charts and sparklines."""

import pytest

from repro.utils.plots import ascii_plot, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_width_decimation(self):
        out = sparkline(range(100), width=10)
        assert len(out) == 10
        assert out[0] == "▁" and out[-1] == "█"


class TestAsciiPlot:
    def test_axes_and_legend(self):
        out = ascii_plot(
            {"adaptive": [(0, 0.0), (1, 0.5), (2, 0.8)]},
            title="curve", xlabel="time", ylabel="acc",
        )
        assert "curve" in out
        assert "time" in out
        assert "* adaptive" in out
        assert "0.8" in out  # y-max tick

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot({
            "a": [(0, 0.0), (1, 1.0)],
            "b": [(0, 1.0), (1, 0.0)],
        })
        assert "* a" in out and "o b" in out
        body = out.split("\n")
        assert any("*" in line for line in body)
        assert any("o" in line for line in body)

    def test_rising_curve_orientation(self):
        """A rising series must put its marker high-right, low-left."""
        out = ascii_plot({"r": [(0, 0.0), (10, 1.0)]}, width=20, height=6)
        rows = [line for line in out.splitlines() if "|" in line]
        top, bottom = rows[0], rows[-1]
        assert top.rstrip().endswith("*")
        assert "*" in bottom.split("|")[1][:3]

    def test_empty_series_noted(self):
        out = ascii_plot({"a": [(0, 1)], "empty": []})
        assert "no data" in out

    def test_all_empty(self):
        assert "(no data)" in ascii_plot({"a": []})

    def test_constant_values_handled(self):
        out = ascii_plot({"flat": [(0, 0.5), (1, 0.5)]})
        assert "flat" in out

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 1)]}, width=5, height=2)

    def test_line_lengths_consistent(self):
        out = ascii_plot({"a": [(0, 0), (5, 2), (9, 1)]}, width=30, height=8)
        plot_rows = [line for line in out.splitlines() if "|" in line]
        assert len({len(r) for r in plot_rows}) == 1
