"""Tests for repro.telemetry.core — the recorder and the null sink."""

import pytest

from repro.perf import profile as kernel_profile
from repro.sim.environment import Environment
from repro.telemetry import NULL, NullTelemetry, Telemetry
from repro.telemetry.core import _NULL_SPAN


def attached(tel=None):
    env = Environment()
    tel = tel or Telemetry()
    tel.attach(env, algorithm="test")
    return env, tel


class TestLifecycle:
    def test_attach_returns_run_index(self):
        tel = Telemetry()
        assert tel.run_index == -1
        assert not tel.attached
        assert tel.attach(Environment()) == 0
        assert tel.attached
        tel.detach()
        assert tel.attach(Environment()) == 1
        assert len(tel.runs) == 2
        assert len(tel.monitor_sets) == 2

    def test_attach_twice_raises(self):
        _, tel = attached()
        with pytest.raises(RuntimeError, match="already attached"):
            tel.attach(Environment())

    def test_detach_idempotent(self):
        _, tel = attached()
        tel.detach()
        tel.detach()
        assert not tel.attached

    def test_recording_unattached_raises(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError, match="not attached"):
            tel.instant("x")
        with pytest.raises(RuntimeError):
            tel.counter("x")
        with pytest.raises(RuntimeError):
            tel.gauge("x", 1.0)

    def test_run_metadata_stored(self):
        _, tel = attached()
        assert tel.runs[0] == {"algorithm": "test"}

    def test_attach_activates_kernel_profile(self):
        _, tel = attached()
        assert kernel_profile.active is tel.kernels
        tel.detach()
        assert kernel_profile.active is None


class TestSpans:
    def test_span_brackets_simulated_time(self):
        env, tel = attached()

        def proc():
            with tel.span("work", device=2, size=64):
                yield env.timeout(3.0)

        env.process(proc())
        env.run()
        (span,) = tel.spans
        assert span.name == "work"
        assert span.ts == 0.0
        assert span.dur == 3.0
        assert span.run == 0
        assert span.device == 2
        assert span.args == {"size": 64}

    def test_nested_spans_record_inner_first(self):
        env, tel = attached()

        def proc():
            with tel.span("outer"):
                yield env.timeout(1.0)
                with tel.span("inner"):
                    yield env.timeout(2.0)
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        # Spans append on __exit__, so the inner one lands first.
        assert [s.name for s in tel.spans] == ["inner", "outer"]
        inner, outer = tel.spans
        assert (inner.ts, inner.dur) == (1.0, 2.0)
        assert (outer.ts, outer.dur) == (0.0, 4.0)
        # Nesting invariant: inner lies inside outer.
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur

    def test_concurrent_spans_are_independent(self):
        env, tel = attached()

        def worker(device, delay):
            with tel.span("step", device=device):
                yield env.timeout(delay)

        env.process(worker(0, 1.0))
        env.process(worker(1, 2.5))
        env.run()
        by_device = {s.device: s for s in tel.spans}
        assert by_device[0].dur == 1.0
        assert by_device[1].dur == 2.5

    def test_span_args_writable_while_open(self):
        env, tel = attached()

        def proc():
            with tel.span("merge") as sp:
                yield env.timeout(1.0)
                sp.args["branch"] = "perturbation"

        env.process(proc())
        env.run()
        assert tel.spans[0].args["branch"] == "perturbation"

    def test_span_names_first_emission_order(self):
        env, tel = attached()
        with tel.span("b"):
            pass
        with tel.span("a"):
            pass
        with tel.span("b"):
            pass
        assert tel.span_names() == ["b", "a"]


class TestInstantsCountersGauges:
    def test_instant_stamps_sim_clock(self):
        env, tel = attached()

        def proc():
            yield env.timeout(1.5)
            tel.instant("dispatch", device=1, size=32)

        env.process(proc())
        env.run()
        (inst,) = tel.instants
        assert (inst.name, inst.ts, inst.device) == ("dispatch", 1.5, 1)
        assert inst.args == {"size": 32}

    def test_counter_is_cumulative_per_device(self):
        env, tel = attached()
        tel.counter("updates", 1, device=0)
        tel.counter("updates", 1, device=0)
        tel.counter("updates", 5, device=1)
        mon0 = tel.monitors["gpu0/updates"]
        mon1 = tel.monitors["gpu1/updates"]
        assert list(mon0.values) == [1.0, 2.0]
        assert list(mon1.values) == [5.0]

    def test_counter_resets_across_runs(self):
        env, tel = attached()
        tel.counter("updates", 3)
        tel.detach()
        tel.attach(Environment())
        tel.counter("updates", 1)
        assert list(tel.monitor_sets[0]["updates"].values) == [3.0]
        assert list(tel.monitor_sets[1]["updates"].values) == [1.0]

    def test_gauge_samples_point_values(self):
        env, tel = attached()
        tel.gauge("accuracy", 0.25)
        tel.gauge("accuracy", 0.5)
        assert list(tel.monitors["accuracy"].values) == [0.25, 0.5]

    def test_monitor_names_across_runs(self):
        env, tel = attached()
        tel.gauge("accuracy", 0.1)
        tel.detach()
        tel.attach(Environment())
        tel.counter("updates", 1, device=0)
        assert tel.monitor_names() == ["accuracy", "gpu0/updates"]


class TestNullTelemetry:
    def test_disabled_flag(self):
        assert NULL.enabled is False
        assert Telemetry.enabled is True
        assert isinstance(NULL, NullTelemetry)

    def test_span_returns_shared_noop(self):
        sp = NULL.span("anything", device=3, size=1)
        assert sp is NULL.span("other")
        assert sp is _NULL_SPAN
        with sp as inner:
            inner.args["branch"] = "x"  # write-and-forget must not raise

    def test_records_nothing_without_attach(self):
        NULL.instant("x", device=0)
        NULL.counter("x", 5, device=0)
        NULL.gauge("x", 1.0)
        assert NULL.attach(Environment()) == -1
        NULL.detach()
        assert NULL.spans == []
        assert NULL.instants == []
        assert NULL.runs == []
        assert NULL.monitor_sets == []
