"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import StageTimer, Stopwatch


class TestStopwatch:
    def test_accumulates_across_intervals(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        first = watch.elapsed
        watch.start()
        total = watch.stop()
        assert total >= first >= 0.0

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_reset_while_running_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.reset()

    def test_running_property(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running


class TestStageTimer:
    def test_stage_accumulates(self):
        timer = StageTimer()
        with timer.stage("fwd"):
            pass
        with timer.stage("fwd"):
            pass
        assert timer.seconds("fwd") >= 0.0
        assert "fwd" in timer.report()

    def test_unknown_stage_reports_zero(self):
        assert StageTimer().seconds("nothing") == 0.0

    def test_total_sums_stages(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        assert timer.total() == pytest.approx(
            timer.seconds("a") + timer.seconds("b")
        )

    def test_stage_timing_survives_exception(self):
        timer = StageTimer()
        with pytest.raises(ValueError):
            with timer.stage("x"):
                raise ValueError("boom")
        # The watch must have been stopped despite the exception.
        with timer.stage("x"):
            pass
        assert timer.seconds("x") >= 0.0
