"""Tests for repro.harness.figures and repro.harness.report."""

import pytest

from repro.core.config import AdaptiveSGDConfig
from repro.harness.figures import (
    PAPER_TABLE1,
    allreduce_comparison,
    fig1_heterogeneity,
    fig6_adaptivity,
    table1_rows,
)
from repro.harness.report import (
    render_allreduce,
    render_fig1,
    render_fig6,
    render_table1,
    render_tta_curves,
    render_tta_summary,
)

FAST_CFG = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=8)


class TestFig1:
    def test_rows_and_gap(self):
        rows = fig1_heterogeneity(
            dataset="micro", batch_size=64, n_epoch_batches=4, seed=0
        )
        assert len(rows) == 4
        slowdowns = [r["relative_slowdown"] for r in rows]
        assert min(slowdowns) == 0.0
        # The headline observation: a gap comparable to the paper's 32%.
        assert 0.15 < max(slowdowns) < 0.45

    def test_uniform_gap_shrinks(self):
        rows = fig1_heterogeneity(
            dataset="micro", batch_size=64, n_epoch_batches=4, seed=0,
            max_gap=0.0,
        )
        assert max(r["relative_slowdown"] for r in rows) < 0.15

    def test_render(self):
        rows = fig1_heterogeneity(
            dataset="micro", batch_size=64, n_epoch_batches=4
        )
        out = render_fig1(rows)
        assert "Figure 1" in out and "gap" in out


class TestTable1:
    def test_paper_reference_rows(self):
        assert PAPER_TABLE1[0]["dataset"] == "Amazon-670k"
        assert PAPER_TABLE1[1]["classes"] == 205_443

    def test_rows_for_micro(self):
        rows = table1_rows(datasets=("micro",))
        assert rows[0]["dataset"] == "micro"

    def test_render_with_paper_reference(self):
        rows = table1_rows(datasets=("micro",))
        out = render_table1(rows, PAPER_TABLE1)
        assert "this reproduction" in out
        assert "Amazon-670k" in out


class TestFig6:
    def test_adaptivity_result(self, micro_task):
        result = fig6_adaptivity(
            dataset="micro", n_gpus=2, time_budget_s=0.02,
            config=FAST_CFG, eval_samples=64,
        )
        assert set(result.batch_size_series) == {0, 1}
        assert 0.0 <= result.perturbation_frequency <= 1.0
        assert result.staleness_max >= 0
        assert sum(result.merge_branches.values()) == len(
            result.trace.merge_branch_history
        )

    def test_render(self):
        result = fig6_adaptivity(
            dataset="micro", n_gpus=2, time_budget_s=0.01,
            config=FAST_CFG, eval_samples=64,
        )
        out = render_fig6(result)
        assert "Figure 6a" in out and "Figure 6b" in out


class TestAllreduce:
    def test_rows_cover_grid(self):
        rows = allreduce_comparison(
            model_params=(1_000_000,), gpu_counts=(2, 4)
        )
        assert len(rows) == 2
        assert {r["gpus"] for r in rows} == {2, 4}

    def test_paper_claim_in_rows(self):
        rows = allreduce_comparison(
            model_params=(1_048_576, 8_388_608), gpu_counts=(4,)
        )
        for row in rows:
            assert row["ring_multi_vs_tree"] >= 2.0

    def test_render(self):
        out = render_allreduce(
            allreduce_comparison(model_params=(1_000_000,), gpu_counts=(4,))
        )
        assert "all-reduce" in out and "ring" in out


class TestCurveRendering:
    def test_tta_outputs(self, micro_task):
        from repro.harness.experiment import run_experiment, ExperimentSpec

        spec = ExperimentSpec(
            dataset="micro", algorithms=("adaptive",), gpu_counts=(2,),
            time_budget_s=0.01, config=FAST_CFG, eval_samples=64,
        )
        traces = run_experiment(spec, task=micro_task)
        curves = render_tta_curves(traces, title="t")
        assert "Adaptive SGD (2 GPUs)" in curves
        summary = render_tta_summary(list(traces.values()))
        assert "best acc" in summary
