"""Tests for repro.sparse.model_state — flat-buffer states and algebra."""

import numpy as np
import pytest

from repro.exceptions import ModelStateError
from repro.sparse.model_state import ModelState, weighted_average

SPEC = [("W1", (4, 3)), ("b1", (3,)), ("W2", (3, 5)), ("b2", (5,))]


class TestConstruction:
    def test_build_zeros(self):
        state = ModelState.build(SPEC)
        assert state.n_params == 4 * 3 + 3 + 3 * 5 + 5
        assert np.all(state.vector == 0)

    def test_views_share_memory(self):
        state = ModelState.build(SPEC)
        state["W1"][0, 0] = 5.0
        assert state.vector[0] == 5.0
        state.vector[12] = 2.0  # first element of b1
        assert state["b1"][0] == 2.0

    def test_layout_order(self):
        state = ModelState.build(SPEC)
        assert state.names() == ["W1", "b1", "W2", "b2"]
        state["b2"][...] = 7.0
        assert np.all(state.vector[-5:] == 7.0)

    def test_from_vector_no_copy_when_compatible(self):
        vec = np.arange(35, dtype=np.float32)
        state = ModelState.from_vector(SPEC, vec)
        state["W1"][0, 0] = -1.0
        assert vec[0] == -1.0

    def test_wrong_size_rejected(self):
        with pytest.raises(ModelStateError):
            ModelState(SPEC, np.zeros(10, dtype=np.float32))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ModelStateError):
            ModelState(SPEC, np.zeros(35, dtype=np.float64))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelStateError):
            ModelState.build([("W", (2,)), ("W", (2,))])

    def test_unknown_param_rejected(self):
        with pytest.raises(ModelStateError, match="unknown parameter"):
            ModelState.build(SPEC)["nope"]

    def test_nbytes(self):
        assert ModelState.build(SPEC).nbytes == 35 * 4


class TestAlgebra:
    def _rand(self, seed):
        rng = np.random.default_rng(seed)
        return ModelState.from_vector(
            SPEC, rng.normal(size=35).astype(np.float32)
        )

    def test_copy_is_deep(self):
        a = self._rand(0)
        b = a.copy()
        b.vector[0] += 1.0
        assert a.vector[0] != b.vector[0]

    def test_copy_from(self):
        a, b = self._rand(0), self._rand(1)
        a.copy_from(b)
        assert np.array_equal(a.vector, b.vector)

    def test_add_scaled(self):
        a, b = self._rand(0), self._rand(1)
        expected = a.vector + 0.5 * b.vector
        a.add_scaled(b, 0.5)
        assert np.allclose(a.vector, expected)

    def test_add_scaled_alpha_one_fast_path(self):
        a, b = self._rand(0), self._rand(1)
        expected = a.vector + b.vector
        a.add_scaled(b, 1.0)
        assert np.allclose(a.vector, expected)

    def test_scale(self):
        a = self._rand(0)
        expected = 0.25 * a.vector
        a.scale(0.25)
        assert np.allclose(a.vector, expected)

    def test_l2_norm(self):
        a = self._rand(0)
        assert a.l2_norm() == pytest.approx(np.linalg.norm(a.vector), rel=1e-6)

    def test_l2_norm_per_param(self):
        a = self._rand(0)
        assert a.l2_norm_per_param() == pytest.approx(a.l2_norm() / 35)

    def test_incompatible_spec_rejected(self):
        a = self._rand(0)
        other = ModelState.build([("X", (35,))])
        with pytest.raises(ModelStateError):
            a.add_scaled(other, 1.0)

    def test_zeros_like(self):
        z = self._rand(0).zeros_like()
        assert np.all(z.vector == 0)


class TestSaveLoad:
    def _rand(self, seed):
        rng = np.random.default_rng(seed)
        return ModelState.from_vector(
            SPEC, rng.normal(size=35).astype(np.float32)
        )

    def test_round_trip_bit_identical(self, tmp_path):
        state = self._rand(0)
        path = state.save(tmp_path / "state.npz")
        back = ModelState.load(path)
        assert back.spec == state.spec
        assert np.array_equal(back.vector, state.vector)

    def test_round_trip_preserves_layout_order(self, tmp_path):
        state = self._rand(1)
        back = ModelState.load(state.save(tmp_path / "state.npz"))
        assert back.names() == state.names()
        for name in state.names():
            assert np.array_equal(back[name], state[name])

    def test_loaded_state_is_contiguous_and_writable(self, tmp_path):
        back = ModelState.load(self._rand(2).save(tmp_path / "s.npz"))
        assert back.vector.flags.c_contiguous
        back["W1"][0, 0] = 9.0
        assert back.vector[0] == 9.0

    def test_save_creates_parent_dirs(self, tmp_path):
        path = self._rand(3).save(tmp_path / "deep" / "nested" / "s.npz")
        assert path.exists()

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, W1=np.zeros((4, 3), dtype=np.float32))
        with pytest.raises(ModelStateError, match="__spec__"):
            ModelState.load(path)

    def test_load_rejects_missing_param(self, tmp_path):
        state = self._rand(4)
        path = state.save(tmp_path / "s.npz")
        with np.load(path) as data:
            arrays = {n: data[n] for n in data.files if n != "b2"}
        np.savez(path, **arrays)
        with pytest.raises(ModelStateError, match="missing parameter"):
            ModelState.load(path)

    def test_load_rejects_shape_mismatch(self, tmp_path):
        state = self._rand(5)
        path = state.save(tmp_path / "s.npz")
        with np.load(path) as data:
            arrays = {n: data[n] for n in data.files}
        arrays["W1"] = arrays["W1"].reshape(3, 4)
        np.savez(path, **arrays)
        with pytest.raises(ModelStateError, match="shape"):
            ModelState.load(path)

    def test_reserved_name_rejected(self, tmp_path):
        state = ModelState.build([("__spec__", (3,))])
        with pytest.raises(ModelStateError, match="reserved"):
            state.save(tmp_path / "s.npz")


class TestWeightedAverage:
    def test_matches_manual(self):
        rng = np.random.default_rng(2)
        states = [
            ModelState.from_vector(SPEC, rng.normal(size=35).astype(np.float32))
            for _ in range(3)
        ]
        weights = [0.2, 0.5, 0.3]
        merged = weighted_average(states, weights)
        expected = sum(
            w * s.vector.astype(np.float64) for w, s in zip(weights, states)
        )
        assert np.allclose(merged.vector, expected, atol=1e-5)

    def test_unnormalized_weights_allowed(self):
        state = ModelState.from_vector(
            SPEC, np.ones(35, dtype=np.float32)
        )
        merged = weighted_average([state, state], [1.0, 1.0])
        assert np.allclose(merged.vector, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ModelStateError):
            weighted_average([], [])

    def test_length_mismatch_rejected(self):
        s = ModelState.build(SPEC)
        with pytest.raises(ModelStateError):
            weighted_average([s], [0.5, 0.5])

    def test_result_independent_storage(self):
        s = ModelState.from_vector(SPEC, np.ones(35, dtype=np.float32))
        merged = weighted_average([s], [1.0])
        merged.vector[0] = 99.0
        assert s.vector[0] == 1.0
