"""Tests for repro.utils.rng — determinism and stream independence."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, derive_seed, make_rng, spawn


class TestMakeRng:
    def test_deterministic_for_int_seed(self):
        a = make_rng(42).random(8)
        b = make_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))

    def test_accepts_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        assert np.array_equal(
            make_rng(np.random.SeedSequence(7)).random(4), make_rng(ss).random(4)
        )


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        kids_a = spawn(3, 4)
        kids_b = spawn(3, 4)
        for a, b in zip(kids_a, kids_b):
            assert np.array_equal(a.random(8), b.random(8))

    def test_children_differ_from_each_other(self):
        kids = spawn(0, 3)
        draws = [k.random(16) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_zero_children(self):
        assert spawn(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn(0, -1)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(5, "data") == derive_seed(5, "data")

    def test_key_paths_distinguish(self):
        assert derive_seed(5, "data") != derive_seed(5, "init")
        assert derive_seed(5, "gpu", 0) != derive_seed(5, "gpu", 1)

    def test_root_seed_distinguishes(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_string_hashing_not_process_salted(self):
        # Python's builtin hash() is salted; ours must not be. The value is
        # pinned so any change to the derivation is caught.
        assert derive_seed(0, "stable-key") == derive_seed(0, "stable-key")

    def test_none_seed_supported(self):
        assert isinstance(derive_seed(None, "x"), int)

    def test_result_fits_63_bits(self):
        for key in range(50):
            assert 0 <= derive_seed(123, key) < 2**63


class TestRngFactory:
    def test_same_key_same_stream(self):
        factory = RngFactory(9)
        assert np.array_equal(
            factory.get("data").random(8), factory.get("data").random(8)
        )

    def test_different_keys_different_streams(self):
        factory = RngFactory(9)
        assert not np.array_equal(
            factory.get("a").random(8), factory.get("b").random(8)
        )

    def test_order_independence(self):
        f1 = RngFactory(3)
        a_first = f1.get("a").random(4)
        f2 = RngFactory(3)
        f2.get("b")  # request another stream first
        a_second = f2.get("a").random(4)
        assert np.array_equal(a_first, a_second)

    def test_child_factory_namespacing(self):
        parent = RngFactory(1)
        child = parent.child("sub")
        assert not np.array_equal(
            parent.get("x").random(4), child.get("x").random(4)
        )
        # but the child is itself deterministic
        child2 = RngFactory(1).child("sub")
        assert np.array_equal(child.get("x").random(4), child2.get("x").random(4))

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(0).get()
