"""Tests for repro.sparse.loss and repro.sparse.metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DataFormatError
from repro.sparse.loss import (
    log_softmax,
    softmax,
    softmax_cross_entropy,
    uniform_label_targets,
)
from repro.sparse.metrics import precision_at_k, top1_accuracy, topk_indices


def indicator(rows_labels, n_labels):
    rows, cols = [], []
    for i, labels in enumerate(rows_labels):
        for lab in labels:
            rows.append(i)
            cols.append(lab)
    return sp.csr_matrix(
        (np.ones(len(rows), dtype=np.float32), (rows, cols)),
        shape=(len(rows_labels), n_labels),
    )


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 7)).astype(np.float32)
        p = softmax(logits.copy())
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-6)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits + 100.0), softmax(logits))

    def test_overflow_stability(self):
        logits = np.array([[1e4, 0.0]])
        p = softmax(logits)
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 6))
        assert np.allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-6)


class TestUniformTargets:
    def test_row_normalization(self):
        Y = indicator([[0], [1, 3], [0, 2, 4]], 5)
        T = uniform_label_targets(Y)
        assert np.allclose(np.asarray(T.sum(axis=1)).ravel(), 1.0)
        assert T[2, 0] == pytest.approx(1.0 / 3)

    def test_empty_row_rejected(self):
        Y = sp.csr_matrix((1, 3), dtype=np.float32)
        with pytest.raises(DataFormatError):
            uniform_label_targets(Y)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        Y = indicator([[0], [1]], 3)
        logits = np.array([[50.0, 0.0, 0.0], [0.0, 50.0, 0.0]], dtype=np.float32)
        loss, grad = softmax_cross_entropy(logits, Y)
        assert loss < 1e-6
        assert np.abs(grad).max() < 1e-6

    def test_uniform_logits_loss_is_log_L(self):
        Y = indicator([[0]], 4)
        logits = np.zeros((1, 4), dtype=np.float32)
        loss, _ = softmax_cross_entropy(logits, Y)
        assert loss == pytest.approx(np.log(4), rel=1e-5)

    def test_gradient_rows_sum_to_zero(self):
        # softmax minus a distribution: each row must sum to 0.
        rng = np.random.default_rng(0)
        Y = indicator([[0, 2], [1], [3, 1]], 5)
        logits = rng.normal(size=(3, 5)).astype(np.float32)
        _, grad = softmax_cross_entropy(logits, Y)
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_gradient_finite_difference(self):
        rng = np.random.default_rng(3)
        Y = indicator([[0, 2], [1]], 4)
        logits = rng.normal(size=(2, 4)).astype(np.float64)
        _, grad = softmax_cross_entropy(logits.astype(np.float32), Y)
        eps = 1e-4
        for i in range(2):
            for j in range(4):
                up = logits.copy()
                up[i, j] += eps
                down = logits.copy()
                down[i, j] -= eps
                lu, _ = softmax_cross_entropy(up.astype(np.float32), Y)
                ld, _ = softmax_cross_entropy(down.astype(np.float32), Y)
                fd = (lu - ld) / (2 * eps)
                assert grad[i, j] == pytest.approx(fd, abs=2e-3)

    def test_shape_mismatch_rejected(self):
        Y = indicator([[0]], 3)
        with pytest.raises(DataFormatError):
            softmax_cross_entropy(np.zeros((1, 4), dtype=np.float32), Y)


class TestPrecisionAtK:
    def test_exact_small_case(self):
        Y = indicator([[0], [1], [2, 0]], 3)
        scores = np.array(
            [[0.9, 0.1, 0.0],   # top1 = 0 -> hit
             [0.9, 0.1, 0.0],   # top1 = 0 -> miss
             [0.5, 0.1, 0.9]],  # top1 = 2 -> hit
            dtype=np.float32,
        )
        assert top1_accuracy(scores, Y) == pytest.approx(2.0 / 3)

    def test_p_at_3(self):
        Y = indicator([[0, 1, 2]], 5)
        scores = np.array([[5.0, 4.0, 3.0, 2.0, 1.0]], dtype=np.float32)
        out = precision_at_k(scores, Y, ks=(1, 3, 5))
        assert out[1] == 1.0
        assert out[3] == 1.0
        assert out[5] == pytest.approx(3.0 / 5)

    def test_k_larger_than_labels_clamped(self):
        Y = indicator([[0]], 2)
        scores = np.array([[1.0, 0.0]], dtype=np.float32)
        out = precision_at_k(scores, Y, ks=(10,))
        assert out[10] == pytest.approx(0.5)

    def test_ties_handled_deterministically(self):
        Y = indicator([[1]], 3)
        scores = np.zeros((1, 3), dtype=np.float32)
        out = precision_at_k(scores, Y, ks=(1,))
        assert out[1] in (0.0, 1.0)  # deterministic either way
        assert out == precision_at_k(scores, Y, ks=(1,))

    def test_invalid_k_rejected(self):
        Y = indicator([[0]], 2)
        with pytest.raises(DataFormatError):
            precision_at_k(np.zeros((1, 2), dtype=np.float32), Y, ks=(0,))

    def test_shape_mismatch_rejected(self):
        Y = indicator([[0]], 2)
        with pytest.raises(DataFormatError):
            precision_at_k(np.zeros((2, 2), dtype=np.float32), Y)


class TestTopkIndices:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(20, 30)).astype(np.float32)
        for k in (1, 3, 29, 30):
            expected = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            assert np.array_equal(topk_indices(scores, k), expected)

    def test_ties_break_toward_lowest_id(self):
        """The argpartition fast path must agree with the stable full sort
        on rows where the k-th score is tied across many labels."""
        scores = np.array(
            [[1.0, 0.5, 0.5, 0.5, 0.2],
             [0.0, 0.0, 0.0, 0.0, 0.0],
             [0.5, 1.0, 0.5, 1.0, 0.5]],
            dtype=np.float32,
        )
        for k in (1, 2, 3, 4):
            expected = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            assert np.array_equal(topk_indices(scores, k), expected)

    def test_all_tied_row_is_identity_prefix(self):
        scores = np.zeros((1, 8), dtype=np.float32)
        assert np.array_equal(topk_indices(scores, 3), [[0, 1, 2]])

    def test_quantized_scores_fast_path(self):
        """Coarsely quantized scores force heavy k-th-value ties — the case
        where bare argpartition would pick arbitrary members."""
        rng = np.random.default_rng(1)
        scores = np.round(rng.normal(size=(40, 50)) * 2).astype(np.float32)
        for k in (5, 13):
            expected = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            assert np.array_equal(topk_indices(scores, k), expected)

    def test_k_clamped_to_width(self):
        scores = np.array([[3.0, 1.0, 2.0]], dtype=np.float32)
        assert np.array_equal(topk_indices(scores, 99), [[0, 2, 1]])

    def test_invalid_inputs(self):
        with pytest.raises(DataFormatError):
            topk_indices(np.zeros(4, dtype=np.float32), 1)
        with pytest.raises(DataFormatError):
            topk_indices(np.zeros((1, 4), dtype=np.float32), 0)
