"""Tests for repro.gpu.timeline — trace export and utilization reports."""

import json

import pytest

from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.gpu.timeline import ascii_timeline, chrome_trace, utilization_report


@pytest.fixture()
def trained_server(micro_task):
    server = make_server(
        4, seed=5, cost_params=GpuCostParams.tiny_model_profile()
    )
    cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=8)
    trace = AdaptiveSGDTrainer(
        micro_task, server, cfg, hidden=(32,), init_seed=1, data_seed=1,
        eval_samples=64,
    ).run(time_budget_s=0.01)
    return server, trace


class TestIntervalRecording:
    def test_trainers_record_intervals(self, trained_server):
        server, _ = trained_server
        for gpu in server.gpus:
            intervals = gpu.busy_intervals
            assert len(intervals) == gpu.steps_executed
            for start, duration, tag in intervals:
                assert start >= 0 and duration > 0 and tag == "step"

    def test_intervals_within_run_horizon(self, trained_server):
        server, trace = trained_server
        for gpu in server.gpus:
            for start, duration, _ in gpu.busy_intervals:
                assert start + duration <= trace.total_time + 1e-9

    def test_intervals_non_overlapping_per_device(self, trained_server):
        server, _ = trained_server
        for gpu in server.gpus:
            intervals = sorted(gpu.busy_intervals)
            for (s0, d0, _), (s1, _, _) in zip(intervals, intervals[1:]):
                assert s1 >= s0 + d0 - 1e-9


class TestChromeTrace:
    def test_export_schema(self, trained_server, tmp_path):
        server, _ = trained_server
        path = chrome_trace(server, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        names = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(names) == 4
        assert len(slices) == sum(g.steps_executed for g in server.gpus)
        for event in slices:
            assert event["dur"] > 0
            assert 0 <= event["tid"] < 4

    def test_creates_parent_dirs(self, trained_server, tmp_path):
        server, _ = trained_server
        path = chrome_trace(server, tmp_path / "deep" / "trace.json")
        assert path.exists()


class TestUtilizationReport:
    def test_rows(self, trained_server):
        server, trace = trained_server
        rows = utilization_report(server, trace.total_time)
        assert len(rows) == 4
        for row in rows:
            assert 0 < row["utilization"] <= 1.0
            assert row["steps"] > 0

    def test_invalid_elapsed_rejected(self, trained_server):
        server, _ = trained_server
        with pytest.raises(ConfigurationError):
            utilization_report(server, 0.0)


class TestAsciiTimeline:
    def test_renders_tracks(self, trained_server):
        server, trace = trained_server
        out = ascii_timeline(server, until=trace.total_time, width=40)
        lines = out.splitlines()
        assert len(lines) == 5  # 4 tracks + axis
        for line in lines[:4]:
            assert "#" in line

    def test_width_validation(self, trained_server):
        server, _ = trained_server
        with pytest.raises(ConfigurationError):
            ascii_timeline(server, width=4)

    def test_no_intervals_all_idle(self):
        server = make_server(2, seed=0)
        out = ascii_timeline(server, until=1.0, width=20)
        assert "#" not in out
