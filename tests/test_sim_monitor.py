"""Tests for repro.sim.monitor."""

import numpy as np
import pytest

from repro.sim.environment import Environment
from repro.sim.monitor import IdleAccountant, Monitor, MonitorSet


class TestMonitor:
    def test_records_at_clock_time(self):
        env = Environment()
        mon = Monitor(env, "q")

        def proc():
            mon.record(1.0)
            yield env.timeout(2)
            mon.record(3.0)

        env.process(proc())
        env.run()
        assert np.array_equal(mon.times, [0.0, 2.0])
        assert np.array_equal(mon.values, [1.0, 3.0])

    def test_explicit_time_override(self):
        mon = Monitor(Environment(), "q")
        mon.record(5.0, time=1.5)
        assert mon.last() == (1.5, 5.0)

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            Monitor(Environment(), "q").last()

    def test_len(self):
        mon = Monitor(Environment(), "q")
        assert len(mon) == 0
        mon.record(1.0)
        assert len(mon) == 1


class TestTimeAverage:
    def test_step_function_average(self):
        mon = Monitor(Environment(), "q")
        mon.record(0.0, time=0.0)
        mon.record(10.0, time=5.0)
        # value 0 for t in [0,5), then 10 until t=10 -> mean 5.
        assert mon.time_average(until=10.0) == pytest.approx(5.0)

    def test_single_sample(self):
        mon = Monitor(Environment(), "q")
        mon.record(7.0, time=0.0)
        assert mon.time_average() == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Monitor(Environment(), "q").time_average()

    def test_until_before_first_sample(self):
        mon = Monitor(Environment(), "q")
        mon.record(3.0, time=2.0)
        assert mon.time_average(until=1.0) == 3.0

    def test_until_truncates_later_samples(self):
        mon = Monitor(Environment(), "q")
        mon.record(0.0, time=0.0)
        mon.record(10.0, time=5.0)
        mon.record(1000.0, time=8.0)  # after `until`: must not contribute
        assert mon.time_average(until=6.0) == pytest.approx(
            (0.0 * 5.0 + 10.0 * 1.0) / 6.0
        )

    def test_until_between_samples_weights_last_partially(self):
        mon = Monitor(Environment(), "q")
        mon.record(2.0, time=0.0)
        mon.record(4.0, time=2.0)
        # 2.0 for [0,2), 4.0 for [2,3) -> (2*2 + 4*1) / 3.
        assert mon.time_average(until=3.0) == pytest.approx(8.0 / 3.0)

    def test_until_exactly_on_sample(self):
        mon = Monitor(Environment(), "q")
        mon.record(1.0, time=0.0)
        mon.record(9.0, time=4.0)
        assert mon.time_average(until=4.0) == pytest.approx(1.0)

    def test_coincident_samples_return_last_value(self):
        mon = Monitor(Environment(), "q")
        mon.record(1.0, time=3.0)
        mon.record(2.0, time=3.0)
        assert mon.time_average() == 2.0

    def test_empty_with_default(self):
        mon = Monitor(Environment(), "q")
        assert mon.time_average(default=0.0) == 0.0
        assert mon.time_average(until=5.0, default=1.5) == 1.5


class TestIdleAccountant:
    def test_back_to_back_intervals_have_zero_idle(self):
        acc = IdleAccountant()
        acc.observe(0, 0.0, 1.0)
        acc.observe(0, 1.0, 2.5)
        acc.observe(0, 2.5, 3.0)
        assert acc.busy_time(0) == pytest.approx(3.0)
        assert acc.idle_time(0) == 0.0

    def test_gapped_intervals_accumulate_idle(self):
        acc = IdleAccountant()
        acc.observe("gpu0", 0.0, 1.0)
        acc.observe("gpu0", 2.0, 3.0)   # 1.0 gap
        acc.observe("gpu0", 3.5, 4.0)   # 0.5 gap
        assert acc.busy_time("gpu0") == pytest.approx(2.5)
        assert acc.idle_time("gpu0") == pytest.approx(1.5)

    def test_overlapping_interval_clamps_gap_at_zero(self):
        acc = IdleAccountant()
        acc.observe(0, 0.0, 2.0)
        acc.observe(0, 1.5, 3.0)  # starts before the previous one ended
        assert acc.idle_time(0) == 0.0
        assert acc.busy_time(0) == pytest.approx(3.5)  # durations still sum

    def test_lanes_are_independent(self):
        acc = IdleAccountant()
        acc.observe(0, 0.0, 1.0)
        acc.observe(1, 5.0, 6.0)
        acc.observe(0, 4.0, 5.0)
        assert acc.idle_time(0) == pytest.approx(3.0)
        assert acc.idle_time(1) == 0.0
        assert acc.keys() == [0, 1]
        assert 0 in acc and 2 not in acc

    def test_unobserved_lane_reads_zero(self):
        acc = IdleAccountant()
        assert acc.busy_time("nope") == 0.0
        assert acc.idle_time("nope") == 0.0

    def test_backwards_interval_raises(self):
        acc = IdleAccountant()
        with pytest.raises(ValueError):
            acc.observe(0, 2.0, 1.0)

    def test_as_records(self):
        acc = IdleAccountant()
        acc.observe(3, 1.0, 2.0)
        acc.observe(3, 4.0, 6.0)
        (rec,) = acc.as_records()
        assert rec == {
            "device": 3, "first_ts": 1.0, "last_ts": 6.0,
            "busy_s": 3.0, "idle_s": 2.0, "intervals": 2,
        }

    def test_zero_width_interval_counts_without_idle_distortion(self):
        acc = IdleAccountant()
        acc.observe(0, 1.0, 1.0)
        acc.observe(0, 1.0, 2.0)
        assert acc.busy_time(0) == pytest.approx(1.0)
        assert acc.idle_time(0) == 0.0

    def test_monitor_set_carries_an_accountant(self):
        ms = MonitorSet(Environment())
        ms.idle.observe(0, 0.0, 1.0)
        assert ms.idle.busy_time(0) == 1.0


class TestMonitorSet:
    def test_get_or_create(self):
        ms = MonitorSet(Environment())
        mon1 = ms["a"]
        mon2 = ms["a"]
        assert mon1 is mon2
        assert "a" in ms
        assert "b" not in ms

    def test_names_in_creation_order(self):
        ms = MonitorSet(Environment())
        ms["z"], ms["a"]
        assert ms.names() == ["z", "a"]

    def test_as_arrays(self):
        ms = MonitorSet(Environment())
        ms["q"].record(1.0, time=0.5)
        arrays = ms.as_arrays()
        assert np.array_equal(arrays["q_times"], [0.5])
        assert np.array_equal(arrays["q_values"], [1.0])

    def test_to_frame_long_format(self):
        ms = MonitorSet(Environment())
        ms["a"].record(1.0, time=0.0)
        ms["a"].record(2.0, time=1.0)
        ms["b"].record(5.0, time=0.5)
        frame = ms.to_frame()
        assert list(frame["monitor"]) == ["a", "a", "b"]
        assert np.array_equal(frame["time"], [0.0, 1.0, 0.5])
        assert np.array_equal(frame["value"], [1.0, 2.0, 5.0])

    def test_to_frame_empty(self):
        frame = MonitorSet(Environment()).to_frame()
        assert frame["monitor"].size == 0
        assert frame["time"].size == 0
        assert frame["value"].size == 0

    def test_to_records(self):
        ms = MonitorSet(Environment())
        ms["a"].record(1.5, time=0.25)
        assert ms.to_records() == [
            {"monitor": "a", "time": 0.25, "value": 1.5}
        ]

    def test_dump_jsonl(self, tmp_path):
        import json

        ms = MonitorSet(Environment())
        ms["a"].record(1.0, time=0.0)
        ms["a"].record(float("nan"), time=1.0)
        path = ms.dump_jsonl(tmp_path / "mon" / "samples.jsonl")
        assert path.exists()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records == [
            {"monitor": "a", "time": 0.0, "value": 1.0},
            {"monitor": "a", "time": 1.0, "value": None},  # NaN -> null
        ]
