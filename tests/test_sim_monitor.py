"""Tests for repro.sim.monitor."""

import numpy as np
import pytest

from repro.sim.environment import Environment
from repro.sim.monitor import Monitor, MonitorSet


class TestMonitor:
    def test_records_at_clock_time(self):
        env = Environment()
        mon = Monitor(env, "q")

        def proc():
            mon.record(1.0)
            yield env.timeout(2)
            mon.record(3.0)

        env.process(proc())
        env.run()
        assert np.array_equal(mon.times, [0.0, 2.0])
        assert np.array_equal(mon.values, [1.0, 3.0])

    def test_explicit_time_override(self):
        mon = Monitor(Environment(), "q")
        mon.record(5.0, time=1.5)
        assert mon.last() == (1.5, 5.0)

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            Monitor(Environment(), "q").last()

    def test_len(self):
        mon = Monitor(Environment(), "q")
        assert len(mon) == 0
        mon.record(1.0)
        assert len(mon) == 1


class TestTimeAverage:
    def test_step_function_average(self):
        mon = Monitor(Environment(), "q")
        mon.record(0.0, time=0.0)
        mon.record(10.0, time=5.0)
        # value 0 for t in [0,5), then 10 until t=10 -> mean 5.
        assert mon.time_average(until=10.0) == pytest.approx(5.0)

    def test_single_sample(self):
        mon = Monitor(Environment(), "q")
        mon.record(7.0, time=0.0)
        assert mon.time_average() == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Monitor(Environment(), "q").time_average()

    def test_until_before_first_sample(self):
        mon = Monitor(Environment(), "q")
        mon.record(3.0, time=2.0)
        assert mon.time_average(until=1.0) == 3.0


class TestMonitorSet:
    def test_get_or_create(self):
        ms = MonitorSet(Environment())
        mon1 = ms["a"]
        mon2 = ms["a"]
        assert mon1 is mon2
        assert "a" in ms
        assert "b" not in ms

    def test_names_in_creation_order(self):
        ms = MonitorSet(Environment())
        ms["z"], ms["a"]
        assert ms.names() == ["z", "a"]

    def test_as_arrays(self):
        ms = MonitorSet(Environment())
        ms["q"].record(1.0, time=0.5)
        arrays = ms.as_arrays()
        assert np.array_equal(arrays["q_times"], [0.5])
        assert np.array_equal(arrays["q_values"], [1.0])
