"""Tests for repro.serve.snapshot — the versioned train → deploy format."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SnapshotError
from repro.serve.snapshot import SNAPSHOT_FORMAT, SNAPSHOT_VERSION, ModelSnapshot
from repro.sparse.mlp import MLPArchitecture, SparseMLP


@pytest.fixture()
def snapshot():
    arch = MLPArchitecture(n_features=40, n_labels=12, hidden=(8,))
    state = SparseMLP(arch).init_state(seed=3)
    return ModelSnapshot(
        arch=arch, state=state, meta={"dataset": "unit", "algorithm": "test"}
    )


class TestRoundTrip:
    def test_bit_identical(self, snapshot, tmp_path):
        snapshot.save(tmp_path / "m")
        back = ModelSnapshot.load(tmp_path / "m")
        assert np.array_equal(back.state.vector, snapshot.state.vector)
        assert back.arch.layer_dims == snapshot.arch.layer_dims

    def test_meta_round_trips(self, snapshot, tmp_path):
        snapshot.save(tmp_path / "m")
        back = ModelSnapshot.load(tmp_path / "m")
        assert back.meta == {"dataset": "unit", "algorithm": "test"}

    def test_save_returns_header_path(self, snapshot, tmp_path):
        header = snapshot.save(tmp_path / "m")
        assert header == tmp_path / "m.snapshot.json"
        assert header.exists()
        assert (tmp_path / "m.snapshot.npz").exists()

    def test_stem_accepts_either_suffix(self, snapshot, tmp_path):
        snapshot.save(tmp_path / "m.snapshot.json")
        for spelling in ("m", "m.snapshot.json", "m.snapshot.npz"):
            back = ModelSnapshot.load(tmp_path / spelling)
            assert np.array_equal(back.state.vector, snapshot.state.vector)

    def test_header_is_strict_json(self, snapshot, tmp_path):
        header = snapshot.save(tmp_path / "m")
        doc = json.loads(header.read_text())
        assert doc["format"] == SNAPSHOT_FORMAT
        assert doc["version"] == SNAPSHOT_VERSION
        assert doc["arch"]["hidden"] == [8]
        assert doc["checksum"]["n_params"] == snapshot.state.n_params


class TestValidation:
    def test_spec_mismatch_rejected_at_construction(self):
        arch = MLPArchitecture(n_features=40, n_labels=12, hidden=(8,))
        other = MLPArchitecture(n_features=40, n_labels=12, hidden=(16,))
        state = SparseMLP(other).init_state(seed=0)
        with pytest.raises(SnapshotError, match="does not match"):
            ModelSnapshot(arch=arch, state=state)

    def test_missing_header(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot header"):
            ModelSnapshot.load(tmp_path / "ghost")

    def test_missing_arrays(self, snapshot, tmp_path):
        snapshot.save(tmp_path / "m")
        (tmp_path / "m.snapshot.npz").unlink()
        with pytest.raises(SnapshotError, match="arrays missing"):
            ModelSnapshot.load(tmp_path / "m")

    def test_wrong_format_tag(self, snapshot, tmp_path):
        header = snapshot.save(tmp_path / "m")
        doc = json.loads(header.read_text())
        doc["format"] = "something-else"
        header.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="not a"):
            ModelSnapshot.load(tmp_path / "m")

    def test_future_version_rejected(self, snapshot, tmp_path):
        header = snapshot.save(tmp_path / "m")
        doc = json.loads(header.read_text())
        doc["version"] = SNAPSHOT_VERSION + 1
        header.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="version"):
            ModelSnapshot.load(tmp_path / "m")

    def test_tampered_norm_rejected(self, snapshot, tmp_path):
        header = snapshot.save(tmp_path / "m")
        doc = json.loads(header.read_text())
        doc["checksum"]["l2_norm"] *= 1.5
        header.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="L2 norm"):
            ModelSnapshot.load(tmp_path / "m")

    def test_mismatched_arrays_rejected(self, snapshot, tmp_path):
        """A header pointing at a different model's arrays must not load."""
        snapshot.save(tmp_path / "m")
        other_arch = MLPArchitecture(n_features=40, n_labels=12, hidden=(8,))
        other = ModelSnapshot(
            arch=other_arch, state=SparseMLP(other_arch).init_state(seed=99)
        )
        other.save(tmp_path / "other")
        npz = (tmp_path / "other.snapshot.npz").read_bytes()
        (tmp_path / "m.snapshot.npz").write_bytes(npz)
        with pytest.raises(SnapshotError):
            ModelSnapshot.load(tmp_path / "m")


class TestDescribe:
    def test_describe_matches_header(self, snapshot):
        doc = snapshot.describe()
        assert doc["n_features"] == 40
        assert doc["n_labels"] == 12
        assert doc["n_params"] == snapshot.state.n_params
        assert doc["meta"]["dataset"] == "unit"


class TestTrainerSaveSnapshot:
    def test_before_any_run_rejected(self, micro_task, het_server):
        from repro.api import make_trainer

        trainer = make_trainer(
            "adaptive", task=micro_task, server=het_server, hidden=(16,)
        )
        with pytest.raises(ConfigurationError, match="checkpoint"):
            trainer.save_snapshot("nope")

    def test_trained_model_round_trips(self, micro_task, het_server, tmp_path):
        from repro.api import make_trainer

        trainer = make_trainer(
            "adaptive", task=micro_task, server=het_server, hidden=(16,)
        )
        trainer.run(time_budget_s=0.02)
        header = trainer.save_snapshot(tmp_path / "trained", note="unit")
        back = ModelSnapshot.load(header)
        assert np.array_equal(back.state.vector, trainer.final_state.vector)
        assert back.meta["algorithm"] == trainer.algorithm
        assert back.meta["dataset"] == micro_task.name
        assert back.meta["note"] == "unit"
