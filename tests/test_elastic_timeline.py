"""Tests for repro.elastic.timeline — events, schedules, churn presets."""

import pytest

from repro.elastic import (
    EVENT_KINDS,
    MembershipEvent,
    MembershipTimeline,
    make_churn_timeline,
)
from repro.exceptions import ConfigurationError
from repro.gpu.profiles import CHURN_PRESETS, churn_preset_names


class TestMembershipEvent:
    def test_valid_kinds(self):
        for kind in EVENT_KINDS:
            factor = 0.5 if kind == "throttle" else None
            e = MembershipEvent(1.0, kind, 0, factor=factor)
            assert e.kind == kind

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MembershipEvent(1.0, "explode", 0)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            MembershipEvent(-0.1, "join", 0)

    def test_throttle_requires_factor(self):
        with pytest.raises(ConfigurationError):
            MembershipEvent(1.0, "throttle", 0)
        with pytest.raises(ConfigurationError):
            MembershipEvent(1.0, "throttle", 0, factor=0.0)
        with pytest.raises(ConfigurationError):
            MembershipEvent(1.0, "throttle", 0, factor=1.5)

    def test_non_throttle_rejects_factor(self):
        with pytest.raises(ConfigurationError):
            MembershipEvent(1.0, "fail", 0, factor=0.5)


class TestMembershipTimeline:
    def test_sorts_by_time(self):
        tl = MembershipTimeline([
            MembershipEvent(2.0, "leave", 0),
            MembershipEvent(1.0, "fail", 1),
        ])
        assert [e.t for e in tl.events] == [1.0, 2.0]

    def test_stable_sort_preserves_equal_time_order(self):
        tl = MembershipTimeline([
            MembershipEvent(1.0, "fail", 0),
            MembershipEvent(1.0, "join", 1),
        ])
        assert [e.kind for e in tl.events] == ["fail", "join"]

    def test_merge(self):
        a = MembershipTimeline([MembershipEvent(1.0, "fail", 0)])
        b = MembershipTimeline([MembershipEvent(0.5, "join", 1)])
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.events[0].kind == "join"

    def test_scaled(self):
        tl = MembershipTimeline([MembershipEvent(1.0, "fail", 0)])
        assert tl.scaled(2.0).events[0].t == 2.0

    def test_counts(self):
        tl = MembershipTimeline([
            MembershipEvent(1.0, "fail", 0),
            MembershipEvent(2.0, "fail", 1),
            MembershipEvent(3.0, "join", 2),
        ])
        assert tl.counts() == {"fail": 2, "join": 1}


class TestTimelineCursor:
    def test_due_is_exactly_once(self):
        tl = MembershipTimeline([
            MembershipEvent(1.0, "fail", 0),
            MembershipEvent(2.0, "join", 1),
        ])
        cursor = tl.cursor()
        first = cursor.due(1.5)
        assert [e.kind for e in first] == ["fail"]
        assert cursor.due(1.5) == ()
        second = cursor.due(10.0)
        assert [e.kind for e in second] == ["join"]
        assert cursor.remaining == 0

    def test_peek_t(self):
        tl = MembershipTimeline([MembershipEvent(3.0, "fail", 0)])
        cursor = tl.cursor()
        assert cursor.peek_t() == 3.0
        cursor.due(5.0)
        assert cursor.peek_t() is None

    def test_delivered_counts(self):
        tl = MembershipTimeline([
            MembershipEvent(1.0, "fail", 0),
            MembershipEvent(2.0, "join", 1),
        ])
        cursor = tl.cursor()
        cursor.due(1.0)
        assert cursor.delivered == 1
        assert cursor.remaining == 1


class TestChurnPresets:
    def test_preset_names_cover_the_documented_table(self):
        assert set(churn_preset_names()) == {
            "stable", "flaky-one", "spot-churn", "brownout"
        }
        assert set(churn_preset_names()) == set(CHURN_PRESETS)

    def test_stable_is_empty(self):
        tl = make_churn_timeline("stable", n_devices=4, duration_s=1.0)
        assert len(tl) == 0

    def test_flaky_one_throttles_and_recovers(self):
        tl = make_churn_timeline("flaky-one", n_devices=4, duration_s=1.0)
        counts = tl.counts()
        assert counts["throttle"] == 1
        assert counts["recover"] == 1

    def test_spot_churn_has_fail_join_throttle(self):
        tl = make_churn_timeline("spot-churn", n_devices=2, duration_s=1.0)
        counts = tl.counts()
        assert counts["fail"] >= 1
        assert counts["join"] >= 1
        assert counts["throttle"] >= 1

    def test_spot_churn_scales_with_devices(self):
        small = make_churn_timeline("spot-churn", n_devices=2, duration_s=1.0)
        big = make_churn_timeline("spot-churn", n_devices=8, duration_s=1.0)
        assert big.counts()["fail"] > small.counts()["fail"]

    def test_brownout_throttles_every_device(self):
        tl = make_churn_timeline("brownout", n_devices=4, duration_s=1.0)
        throttled = {e.device_id for e in tl.events if e.kind == "throttle"}
        assert throttled == {0, 1, 2, 3}

    def test_deterministic_for_a_seed(self):
        a = make_churn_timeline("spot-churn", n_devices=4, duration_s=1.0, seed=7)
        b = make_churn_timeline("spot-churn", n_devices=4, duration_s=1.0, seed=7)
        assert a.events == b.events

    def test_seed_changes_schedule(self):
        a = make_churn_timeline("spot-churn", n_devices=4, duration_s=1.0, seed=0)
        b = make_churn_timeline("spot-churn", n_devices=4, duration_s=1.0, seed=1)
        assert a.events != b.events

    def test_events_fit_the_duration(self):
        tl = make_churn_timeline("spot-churn", n_devices=4, duration_s=2.5)
        assert all(0.0 <= e.t <= 2.5 for e in tl.events)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_churn_timeline("nope", n_devices=2, duration_s=1.0)
