"""Tests for repro.serve.store — the versioned publish/subscribe store."""

import json

import numpy as np
import pytest

from repro.exceptions import SnapshotError
from repro.serve.snapshot import ModelSnapshot
from repro.serve.store import (
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_VERSION,
    SnapshotStore,
)
from repro.sparse.mlp import MLPArchitecture, SparseMLP

ARCH = MLPArchitecture(n_features=40, n_labels=12, hidden=(8,))


def make_snapshot(seed=3, meta=None):
    state = SparseMLP(ARCH).init_state(seed=seed)
    return ModelSnapshot(
        arch=ARCH,
        state=state,
        meta=meta or {"dataset": "unit", "algorithm": "test"},
    )


@pytest.fixture()
def store(tmp_path):
    return SnapshotStore(tmp_path / "store")


class TestPublishLoad:
    def test_versions_are_monotonic_from_one(self, store):
        assert store.publish(make_snapshot(seed=1)) == 1
        assert store.publish(make_snapshot(seed=2)) == 2
        assert store.versions() == [1, 2]
        assert store.latest_version() == 2

    def test_round_trip_is_bit_identical(self, store):
        snapshot = make_snapshot(seed=7)
        v = store.publish(snapshot, published_s=0.5)
        back = store.load(v)
        assert np.array_equal(back.state.vector, snapshot.state.vector)
        assert back.meta["store_version"] == v
        assert back.meta["published_s"] == 0.5
        assert back.meta["dataset"] == "unit"

    def test_entry_carries_integrity_essentials(self, store):
        snapshot = make_snapshot(seed=7)
        v = store.publish(snapshot, published_s=0.25)
        entry = store.entry(v)
        assert entry.stem == "v000001"
        assert entry.published_s == 0.25
        assert entry.n_params == snapshot.state.n_params
        assert entry.l2_norm == pytest.approx(snapshot.state.l2_norm())
        assert entry.meta == {"dataset": "unit", "algorithm": "test"}

    def test_empty_store(self, store):
        assert store.versions() == []
        assert store.latest_version() is None
        assert store.version_at(10.0) is None
        assert store.poll(after=0, now=10.0) is None

    def test_unknown_version_raises(self, store):
        store.publish(make_snapshot())
        with pytest.raises(SnapshotError, match="no version 9"):
            store.entry(9)

    def test_manifest_is_strict_json(self, store):
        store.publish(make_snapshot(), published_s=0.1)
        doc = json.loads(store.manifest_path.read_text())
        assert doc["format"] == STORE_FORMAT
        assert doc["version"] == STORE_VERSION
        assert doc["next_version"] == 2
        assert [e["version"] for e in doc["entries"]] == [1]


class TestPublishTimeOrder:
    def test_negative_time_rejected(self, store):
        with pytest.raises(SnapshotError, match=">= 0"):
            store.publish(make_snapshot(), published_s=-1.0)

    def test_time_travel_rejected(self, store):
        store.publish(make_snapshot(seed=1), published_s=0.5)
        with pytest.raises(SnapshotError, match="precedes"):
            store.publish(make_snapshot(seed=2), published_s=0.2)

    def test_equal_times_allowed(self, store):
        store.publish(make_snapshot(seed=1), published_s=0.5)
        assert store.publish(make_snapshot(seed=2), published_s=0.5) == 2


class TestSimClockVisibility:
    def test_version_at_picks_newest_published(self, store):
        store.publish(make_snapshot(seed=1), published_s=0.0)
        store.publish(make_snapshot(seed=2), published_s=1.0)
        store.publish(make_snapshot(seed=3), published_s=2.0)
        assert store.version_at(0.0) == 1
        assert store.version_at(1.5) == 2
        assert store.version_at(9.0) == 3

    def test_version_at_falls_back_to_oldest(self, store):
        store.publish(make_snapshot(seed=1), published_s=5.0)
        assert store.version_at(0.0) == 1

    def test_poll_filters_on_sim_time(self, store):
        store.publish(make_snapshot(seed=1), published_s=0.0)
        store.publish(make_snapshot(seed=2), published_s=1.0)
        assert store.poll(after=1, now=0.5) is None
        assert store.poll(after=1, now=1.0) == 2
        assert store.poll(after=2, now=9.0) is None

    def test_poll_sees_other_handles_publishes(self, store):
        reader = SnapshotStore(store.root, create=False)
        store.publish(make_snapshot(seed=1), published_s=0.0)
        store.publish(make_snapshot(seed=2), published_s=0.2)
        # poll() re-reads the manifest, so the writer's publishes land.
        assert reader.poll(after=0, now=1.0) == 2


class TestFailurePaths:
    def test_missing_dir_without_create(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot store"):
            SnapshotStore(tmp_path / "ghost", create=False)

    def test_corrupted_npz_raises(self, store):
        v = store.publish(make_snapshot())
        npz = store.root / "v000001.snapshot.npz"
        npz.write_bytes(npz.read_bytes()[:64])
        with pytest.raises(SnapshotError):
            store.load(v)

    def test_version_skew_detected(self, store):
        """Shuffled artifact files must not serve the wrong weights."""
        store.publish(make_snapshot(seed=1))
        store.publish(make_snapshot(seed=2))
        # Each header names its own npz, so swapping just the headers
        # yields internally consistent snapshots under the wrong stems.
        a = (store.root / "v000001.snapshot.json").read_bytes()
        b = (store.root / "v000002.snapshot.json").read_bytes()
        (store.root / "v000001.snapshot.json").write_bytes(b)
        (store.root / "v000002.snapshot.json").write_bytes(a)
        with pytest.raises(SnapshotError, match="version skew"):
            store.load(1)

    def test_param_count_mismatch_detected(self, store):
        v = store.publish(make_snapshot())
        doc = json.loads(store.manifest_path.read_text())
        doc["entries"][0]["n_params"] += 1
        store.manifest_path.write_text(json.dumps(doc))
        store.refresh()
        with pytest.raises(SnapshotError, match="parameters"):
            store.load(v)

    def test_wrong_format_tag(self, store):
        doc = json.loads(store.manifest_path.read_text())
        doc["format"] = "something-else"
        store.manifest_path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="not a"):
            SnapshotStore(store.root)

    def test_future_store_version(self, store):
        doc = json.loads(store.manifest_path.read_text())
        doc["version"] = STORE_VERSION + 1
        store.manifest_path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="store version"):
            SnapshotStore(store.root)

    def test_malformed_entries(self, store):
        doc = json.loads(store.manifest_path.read_text())
        doc["entries"] = [{"version": 1}]
        store.manifest_path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="malformed"):
            SnapshotStore(store.root)

    def test_non_ascending_versions(self, store):
        store.publish(make_snapshot(seed=1))
        store.publish(make_snapshot(seed=2))
        doc = json.loads(store.manifest_path.read_text())
        doc["entries"].reverse()
        store.manifest_path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="ascending"):
            SnapshotStore(store.root)

    def test_stale_next_version(self, store):
        store.publish(make_snapshot())
        doc = json.loads(store.manifest_path.read_text())
        doc["next_version"] = 1
        store.manifest_path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="next_version"):
            SnapshotStore(store.root)


class TestManifestOnlyAudit:
    def test_entries_property_is_a_copy(self, store):
        store.publish(make_snapshot())
        store.entries.clear()
        assert store.versions() == [1]
