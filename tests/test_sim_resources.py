"""Tests for repro.sim.resources — Resource and Store semantics."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.environment import Environment
from repro.sim.resources import Resource, Store


def run_workers(env, res, holds):
    """Start one holder per entry in ``holds``; return the event log."""
    log = []

    def worker(name, hold):
        yield res.request()
        log.append((env.now, name, "acquire"))
        yield env.timeout(hold)
        res.release()
        log.append((env.now, name, "release"))

    for i, hold in enumerate(holds):
        env.process(worker(f"w{i}", hold))
    env.run()
    return log


class TestResource:
    def test_capacity_one_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = run_workers(env, res, [2.0, 1.0])
        assert log == [
            (0.0, "w0", "acquire"),
            (2.0, "w0", "release"),
            (2.0, "w1", "acquire"),
            (3.0, "w1", "release"),
        ]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = run_workers(env, res, [2.0, 2.0, 2.0])
        acquires = [entry for entry in log if entry[2] == "acquire"]
        assert acquires[0][0] == 0.0 and acquires[1][0] == 0.0
        assert acquires[2][0] == 2.0  # third waits for a release

    def test_fifo_granting(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = run_workers(env, res, [1.0, 1.0, 1.0])
        order = [name for _, name, what in log if what == "acquire"]
        assert order == ["w0", "w1", "w2"]

    def test_in_use_and_queued_counts(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        assert res.in_use == 1
        assert res.queued == 1

    def test_release_without_request_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env).release()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        got = store.get()
        env.run()
        assert got.value == "a"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append((env.now, item))

        def producer():
            yield env.timeout(5)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == [(5.0, "late")]

    def test_fifo_items(self):
        env = Environment()
        store = Store(env)
        for item in ("a", "b", "c"):
            store.put(item)
        order = []

        def consumer():
            for _ in range(3):
                order.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert order == ["a", "b", "c"]

    def test_fifo_getters(self):
        env = Environment()
        store = Store(env)
        served = []

        def consumer(name):
            item = yield store.get()
            served.append((name, item))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1)
            store.put(1)
            store.put(2)

        env.process(producer())
        env.run()
        assert served == [("first", 1), ("second", 2)]

    def test_len_and_waiting(self):
        env = Environment()
        store = Store(env)
        assert len(store) == 0
        store.put("x")
        assert len(store) == 1
        store.get()
        assert len(store) == 0
        store.get()
        assert store.waiting == 1
