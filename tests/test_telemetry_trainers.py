"""Schema parity: every trainer emits the uniform telemetry vocabulary.

Each registered algorithm runs once with a recorder attached and must emit
the CORE_SPANS / CORE_GAUGES plus the ``updates`` counter — and recording
must not perturb the simulation (enabled and disabled runs bit-identical).
"""

import numpy as np
import pytest

from repro.api import make_trainer, trainer_names
from repro.harness.experiment import ExperimentSpec
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    CORE_GAUGES,
    CORE_SPANS,
    COUNTER_UPDATES,
    SPAN_LSH_REBUILD,
    SPAN_MERGE,
)

BUDGET = 0.015


def run_with_telemetry(name):
    spec = ExperimentSpec(dataset="micro", gpu_counts=(2,), time_budget_s=BUDGET)
    n_gpus = 1 if name == "slide" else 2
    tel = Telemetry(label=name)
    trainer = make_trainer(name, spec, n_gpus=n_gpus, telemetry=tel)
    trace = trainer.run(time_budget_s=BUDGET)
    return trace, tel


def base_names(tel):
    """Monitor names with the ``gpuN/`` device prefix stripped."""
    return {n.rsplit("/", 1)[-1] for n in tel.monitor_names()}


@pytest.mark.parametrize("name", trainer_names())
class TestUniformSchema:
    def test_core_spans_emitted(self, name):
        _, tel = run_with_telemetry(name)
        assert set(CORE_SPANS) <= set(tel.span_names())

    def test_core_gauges_and_updates_emitted(self, name):
        _, tel = run_with_telemetry(name)
        names = base_names(tel)
        assert set(CORE_GAUGES) <= names
        assert COUNTER_UPDATES in names

    def test_run_metadata_identifies_algorithm(self, name):
        trace, tel = run_with_telemetry(name)
        (meta,) = tel.runs
        assert meta["algorithm"] == trace.algorithm
        assert meta["dataset"] == "micro"

    def test_spans_lie_within_the_run_span(self, name):
        _, tel = run_with_telemetry(name)
        run_span = next(s for s in tel.spans if s.name == "run")
        end = run_span.ts + run_span.dur
        for span in tel.spans:
            assert span.ts >= run_span.ts
            assert span.ts + span.dur <= end + 1e-9

    def test_recording_does_not_perturb_the_run(self, name):
        """Telemetry must observe, never steer: identical curves either way."""
        spec = ExperimentSpec(
            dataset="micro", gpu_counts=(2,), time_budget_s=BUDGET
        )
        n_gpus = 1 if name == "slide" else 2
        plain = make_trainer(name, spec, n_gpus=n_gpus)
        traced = make_trainer(name, spec, n_gpus=n_gpus, telemetry=Telemetry())
        a = plain.run(time_budget_s=BUDGET)
        b = traced.run(time_budget_s=BUDGET)
        assert np.array_equal(
            [p.time_s for p in a.points], [p.time_s for p in b.points]
        )
        assert np.array_equal(
            [p.accuracy for p in a.points], [p.accuracy for p in b.points]
        )
        assert np.array_equal(
            [p.updates for p in a.points], [p.updates for p in b.points]
        )


class TestAlgorithmSpecificSpans:
    def test_multi_device_trainers_emit_merge(self):
        for name in ("adaptive", "elastic", "tensorflow", "crossbow"):
            _, tel = run_with_telemetry(name)
            assert SPAN_MERGE in tel.span_names(), name

    def test_slide_emits_lsh_rebuild_spans(self):
        _, tel = run_with_telemetry("slide")
        assert SPAN_LSH_REBUILD in tel.span_names()

    def test_adaptive_merge_spans_carry_branch(self):
        _, tel = run_with_telemetry("adaptive")
        merges = [s for s in tel.spans if s.name == SPAN_MERGE]
        assert merges
        assert all("branch" in s.args for s in merges)

    def test_step_spans_are_device_tagged(self):
        _, tel = run_with_telemetry("adaptive")
        devices = {s.device for s in tel.spans if s.name == "step.compute"}
        assert devices == {0, 1}
