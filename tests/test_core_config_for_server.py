"""Tests for AdaptiveSGDConfig.for_server — memory-derived b_max (§V-A)."""

import pytest

from repro.core.config import AdaptiveSGDConfig
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server

PAPER_MODEL = (135_909, 128, 670_091)  # Amazon-670k 3-layer MLP


class TestForServer:
    def test_paper_scale_magnitude(self):
        """On 16GB V100s the Amazon-670k model allows thousands of samples."""
        server = make_server(4, seed=0)
        cfg = AdaptiveSGDConfig.for_server(
            server, PAPER_MODEL, avg_nnz_per_sample=76.0
        )
        assert 1000 < cfg.b_max < 50_000
        # Derivation rules still apply on top.
        assert cfg.b_min == cfg.b_max // 8
        assert cfg.beta == cfg.b_min / 2

    def test_batch_actually_fits_every_gpu(self):
        from repro.gpu.cost import StepWorkload

        server = make_server(4, seed=0)
        cfg = AdaptiveSGDConfig.for_server(
            server, PAPER_MODEL, avg_nnz_per_sample=76.0
        )
        n_params = sum(
            PAPER_MODEL[i] * PAPER_MODEL[i + 1] + PAPER_MODEL[i + 1]
            for i in range(2)
        )
        work = StepWorkload(
            cfg.b_max, int(cfg.b_max * 76), tuple(PAPER_MODEL)
        )
        for gpu in server.gpus:
            assert gpu.batch_fits(work, 4 * n_params)

    def test_cap_applies(self):
        server = make_server(2, seed=0)
        cfg = AdaptiveSGDConfig.for_server(
            server, (100, 16, 50), avg_nnz_per_sample=10.0, cap=256
        )
        assert cfg.b_max == 256

    def test_utilization_shrinks_b_max(self):
        server = make_server(2, seed=0)
        full = AdaptiveSGDConfig.for_server(
            server, PAPER_MODEL, avg_nnz_per_sample=76.0, utilization=1.0
        )
        half = AdaptiveSGDConfig.for_server(
            server, PAPER_MODEL, avg_nnz_per_sample=76.0, utilization=0.5
        )
        assert half.b_max < full.b_max

    def test_overrides_forwarded(self):
        server = make_server(2, seed=0)
        cfg = AdaptiveSGDConfig.for_server(
            server, PAPER_MODEL, avg_nnz_per_sample=76.0,
            base_lr=0.5, gamma=0.5, cap=512,
        )
        assert cfg.base_lr == 0.5 and cfg.gamma == 0.5

    def test_invalid_utilization_rejected(self):
        server = make_server(2, seed=0)
        with pytest.raises(ConfigurationError):
            AdaptiveSGDConfig.for_server(
                server, PAPER_MODEL, avg_nnz_per_sample=76.0, utilization=0.0
            )
