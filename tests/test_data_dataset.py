"""Tests for repro.data.dataset containers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.dataset import SparseDataset, XMLTask
from repro.exceptions import DataFormatError


def make_split(n=6, d=10, l=4, seed=0):
    rng = np.random.default_rng(seed)
    X = sp.random(n, d, density=0.3, random_state=rng, format="csr", dtype=np.float32)
    # Guarantee one label per sample.
    rows = np.arange(n)
    cols = rng.integers(0, l, size=n)
    Y = sp.csr_matrix(
        (np.ones(n, dtype=np.float32), (rows, cols)), shape=(n, l)
    )
    return SparseDataset(X=X, Y=Y, name="t")


class TestSparseDataset:
    def test_shapes(self):
        ds = make_split()
        assert ds.n_samples == 6 and ds.n_features == 10 and ds.n_labels == 4
        assert len(ds) == 6

    def test_mismatched_rows_rejected(self):
        ds = make_split()
        with pytest.raises(DataFormatError, match="samples"):
            SparseDataset(X=ds.X, Y=ds.Y[:4])

    def test_sample_without_label_rejected(self):
        X = sp.csr_matrix(np.ones((2, 3), dtype=np.float32))
        Y = sp.csr_matrix(
            (np.ones(1, dtype=np.float32), ([0], [0])), shape=(2, 2)
        )
        with pytest.raises(DataFormatError, match="no labels"):
            SparseDataset(X=X, Y=Y)

    def test_nonbinary_labels_rejected(self):
        X = sp.csr_matrix(np.ones((1, 2), dtype=np.float32))
        Y = sp.csr_matrix(np.array([[2.0, 0.0]], dtype=np.float32))
        with pytest.raises(DataFormatError, match="binary"):
            SparseDataset(X=X, Y=Y)

    def test_dense_input_rejected(self):
        with pytest.raises(DataFormatError):
            SparseDataset(X=np.ones((2, 2)), Y=sp.csr_matrix(np.eye(2)))

    def test_avg_stats(self):
        ds = make_split()
        assert ds.avg_features_per_sample == pytest.approx(ds.X.nnz / 6)
        assert ds.avg_labels_per_sample == pytest.approx(1.0)

    def test_features_per_sample_matches_indptr(self):
        ds = make_split()
        assert np.array_equal(ds.features_per_sample(), np.diff(ds.X.indptr))

    def test_take_subsets_rows(self):
        ds = make_split()
        sub = ds.take([1, 3])
        assert sub.n_samples == 2
        assert np.allclose(sub.X.toarray(), ds.X[[1, 3]].toarray())

    def test_label_sets(self):
        ds = make_split()
        sets = ds.label_sets()
        assert len(sets) == ds.n_samples
        for i, labels in enumerate(sets):
            assert np.array_equal(labels, ds.Y[i].indices)

    def test_csr_normalization(self):
        # COO input with duplicates must be collapsed and sorted.
        X = sp.coo_matrix(
            (np.array([1.0, 2.0], dtype=np.float32), ([0, 0], [1, 1])),
            shape=(1, 3),
        )
        Y = sp.csr_matrix(np.array([[1.0]], dtype=np.float32))
        ds = SparseDataset(X=X, Y=Y)
        assert ds.X.nnz == 1
        assert ds.X[0, 1] == pytest.approx(3.0)


class TestXMLTask:
    def test_describe_columns(self):
        task = XMLTask(train=make_split(seed=0), test=make_split(seed=1), name="demo")
        row = task.describe()
        assert list(row) == [
            "dataset", "features", "classes", "training samples",
            "testing samples", "avg features per sample",
            "avg classes per sample",
        ]
        assert row["dataset"] == "demo"

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            XMLTask(train=make_split(d=10), test=make_split(d=11))

    def test_label_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            XMLTask(train=make_split(l=4), test=make_split(l=5))
