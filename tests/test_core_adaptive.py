"""Tests for repro.core.adaptive — the full Adaptive SGD trainer."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.core.staleness import staleness_bound
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams


def run_adaptive(micro_task, server, budget=0.03, **cfg_kwargs):
    defaults = dict(b_max=64, base_lr=0.2, mega_batch_batches=16)
    defaults.update(cfg_kwargs)
    cfg = AdaptiveSGDConfig(**defaults)
    trainer = AdaptiveSGDTrainer(
        micro_task, server, cfg, hidden=(32,), init_seed=7, data_seed=3,
        eval_samples=128,
    )
    return trainer.run(time_budget_s=budget), cfg


class TestAdaptiveTrainer:
    def test_trace_structure(self, micro_task, het_server):
        trace, _ = run_adaptive(micro_task, het_server)
        assert trace.algorithm == "Adaptive SGD"
        assert trace.n_devices == 4
        assert len(trace) >= 2  # initial point + >= 1 mega-batch
        n_boundaries = len(trace) - 1
        assert len(trace.batch_size_history) == n_boundaries
        assert len(trace.perturbation_history) == n_boundaries
        assert len(trace.merge_branch_history) == n_boundaries
        assert len(trace.staleness_history) == n_boundaries

    def test_times_strictly_increasing(self, micro_task, het_server):
        trace, _ = run_adaptive(micro_task, het_server)
        times = [p.time_s for p in trace.points]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_learning_happens(self, micro_task, het_server):
        trace, _ = run_adaptive(micro_task, het_server, budget=0.05)
        assert trace.best_accuracy > trace.points[0].accuracy + 0.15

    def test_initial_batch_sizes_at_b_max(self, micro_task, het_server):
        trace, cfg = run_adaptive(micro_task, het_server)
        assert trace.batch_size_history[0] == tuple([cfg.b_max] * 4)

    def test_batch_sizes_respect_bounds(self, micro_task, het_server):
        trace, cfg = run_adaptive(micro_task, het_server, budget=0.05)
        for sizes in trace.batch_size_history:
            for size in sizes:
                assert cfg.b_min <= size <= cfg.b_max

    def test_batch_scaling_activates_on_heterogeneous_server(
        self, micro_task, het_server
    ):
        # Needs enough batches per GPU per mega-batch (>= ~1/gap) for the
        # speed skew to produce update imbalance; 32 batches over 4 GPUs
        # with a 32% gap guarantees it.
        trace, cfg = run_adaptive(
            micro_task, het_server, budget=0.1, mega_batch_batches=32
        )
        assert any(
            sizes != tuple([cfg.b_max] * 4)
            for sizes in trace.batch_size_history
        )

    def test_staleness_within_analytic_bound(self, micro_task, het_server):
        trace, cfg = run_adaptive(micro_task, het_server, budget=0.05)
        bound = staleness_bound(cfg.mega_batch_size, cfg.b_min, cfg.b_max, 4)
        assert max(trace.staleness_history) <= bound

    def test_deterministic_replay(self, micro_task):
        def one_run():
            server = make_server(
                4, seed=5, cost_params=GpuCostParams.tiny_model_profile()
            )
            trace, _ = run_adaptive(micro_task, server, budget=0.02)
            return (
                [p.accuracy for p in trace.points],
                trace.batch_size_history,
                [p.time_s for p in trace.points],
            )

        assert one_run() == one_run()

    def test_uniform_server_keeps_equal_batches(self, micro_task, uniform_server):
        """Control: with identical GPUs there is nothing to adapt to."""
        trace, cfg = run_adaptive(micro_task, uniform_server, budget=0.03)
        for sizes in trace.batch_size_history:
            assert max(sizes) - min(sizes) <= cfg.beta  # essentially flat

    def test_single_gpu_runs(self, micro_task):
        server = make_server(
            1, seed=5, cost_params=GpuCostParams.tiny_model_profile()
        )
        trace, _ = run_adaptive(micro_task, server, budget=0.05)
        assert trace.n_devices == 1
        assert all(len(s) == 1 for s in trace.batch_size_history)
        assert all(s == 0 for s in trace.staleness_history)
        assert trace.best_accuracy > 0.2

    def test_devices_record_utilization(self, micro_task, het_server):
        run_adaptive(micro_task, het_server)
        assert all(g.busy_seconds > 0 for g in het_server.gpus)
        assert all(g.steps_executed > 0 for g in het_server.gpus)

    def test_gpu_epoch_counts_reflect_speed(self, micro_task, het_server):
        """Dynamic scheduling: faster GPUs execute more steps overall."""
        run_adaptive(
            micro_task, het_server, budget=0.05, enable_batch_scaling=False
        )
        speeds = [g.profile.base for g in het_server.gpus]
        steps = [g.steps_executed for g in het_server.gpus]
        fastest = int(np.argmax(speeds))
        slowest = int(np.argmin(speeds))
        assert steps[fastest] >= steps[slowest]

    def test_perturbation_history_records_fires(self, micro_task, het_server):
        trace, _ = run_adaptive(micro_task, het_server, budget=0.03)
        assert any(trace.perturbation_history)  # fresh model is regularized

    def test_metadata_recorded(self, micro_task, het_server):
        trace, cfg = run_adaptive(micro_task, het_server)
        assert trace.metadata["config"] is cfg
        assert trace.metadata["allreduce"] == "ring"
        assert trace.metadata["n_params"] > 0
