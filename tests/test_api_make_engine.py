"""Tests for repro.api.make_engine — the validated serving facade."""

import numpy as np
import pytest

from repro.api import make_engine
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.serve import (
    ModelSnapshot,
    Predictor,
    ServingConfig,
    ServingEngine,
    SnapshotStore,
)
from repro.sparse.mlp import MLPArchitecture, SparseMLP

ARCH = MLPArchitecture(n_features=40, n_labels=12, hidden=(8,))


def make_snapshot(seed=3):
    return ModelSnapshot(
        arch=ARCH,
        state=SparseMLP(ARCH).init_state(seed=seed),
        meta={"dataset": "unit"},
    )


@pytest.fixture()
def snapshot():
    return make_snapshot()


class TestSources:
    def test_from_snapshot(self, snapshot):
        engine = make_engine(snapshot)
        assert isinstance(engine, ServingEngine)
        assert engine.predictor.snapshot is snapshot
        assert engine.store is None
        assert engine.base_version == 0

    def test_from_header_path(self, snapshot, tmp_path):
        header = snapshot.save(tmp_path / "m")
        for spelling in (header, str(header), tmp_path / "m",
                         str(tmp_path / "m")):
            engine = make_engine(spelling)
            assert np.array_equal(
                engine.predictor.snapshot.state.vector,
                snapshot.state.vector,
            )

    def test_from_store_directory(self, snapshot, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        store.publish(snapshot, published_s=0.0)
        store.publish(make_snapshot(seed=9), published_s=1.0)
        engine = make_engine(str(tmp_path / "s"))
        # Auto-subscribed, starting from the version live at sim time 0.
        assert engine.store is not None
        assert engine.store.root == store.root
        assert engine.base_version == 1
        assert np.array_equal(
            engine.predictor.snapshot.state.vector, snapshot.state.vector
        )

    def test_from_store_instance_with_version(self, snapshot, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        store.publish(snapshot, published_s=0.0)
        other = make_snapshot(seed=9)
        store.publish(other, published_s=1.0)
        engine = make_engine(store, version=2)
        assert engine.base_version == 2
        assert np.array_equal(
            engine.predictor.snapshot.state.vector, other.state.vector
        )

    def test_from_predictor(self, snapshot):
        predictor = Predictor(snapshot)
        engine = make_engine(predictor, version=3)
        assert engine.predictor is predictor
        assert engine.base_version == 3

    def test_empty_store_rejected(self, tmp_path):
        SnapshotStore(tmp_path / "s")
        with pytest.raises(ConfigurationError, match="empty"):
            make_engine(tmp_path / "s")

    def test_missing_path_raises(self, tmp_path):
        from repro.exceptions import SnapshotError
        with pytest.raises(SnapshotError):
            make_engine(tmp_path / "ghost")

    def test_bad_source_type(self):
        with pytest.raises(ConfigurationError, match="source"):
            make_engine(42)


class TestOptions:
    def test_options_flow_into_config(self, snapshot):
        engine = make_engine(snapshot, mode="sequential", scoring="lsh",
                             k=3, max_queue_depth=16)
        assert engine.mode == "sequential"
        assert engine.scoring == "lsh"
        assert engine.config.k == 3
        assert engine.config.max_queue_depth == 16

    def test_prebuilt_config(self, snapshot):
        config = ServingConfig(mode="sequential")
        engine = make_engine(snapshot, config=config)
        assert engine.config is config

    def test_config_and_options_conflict(self, snapshot):
        with pytest.raises(ConfigurationError, match="not both"):
            make_engine(snapshot, config=ServingConfig(), mode="adaptive")

    def test_config_type_checked(self, snapshot):
        with pytest.raises(ConfigurationError, match="ServingConfig"):
            make_engine(snapshot, config="adaptive")

    def test_unknown_option_rejected_early(self, snapshot):
        with pytest.raises(ConfigurationError, match="unknown option"):
            make_engine(snapshot, batchsize=8)

    def test_invalid_option_value_rejected(self, snapshot):
        with pytest.raises(ConfigurationError):
            make_engine(snapshot, mode="warp")

    def test_use_lsh_deprecation_lives_in_one_layer(self, snapshot):
        with pytest.warns(DeprecationWarning, match="scoring='lsh'"):
            engine = make_engine(snapshot, use_lsh=True)
        assert engine.scoring == "lsh"
        assert engine.use_lsh is True

    def test_lsh_options_reach_predictor(self, snapshot):
        engine = make_engine(snapshot, scoring="lsh", lsh_tables=8,
                             lsh_bits=3)
        assert engine.predictor.lsh_tables == 8
        assert engine.predictor.lsh_bits == 3


class TestServer:
    def test_default_server(self, snapshot):
        engine = make_engine(snapshot, n_gpus=3)
        assert engine.server.n_gpus == 3

    def test_server_override(self, snapshot):
        server = make_server(
            4, cost_params=GpuCostParams.tiny_model_profile(), seed=1
        )
        engine = make_engine(snapshot, server=server)
        assert engine.server is server
