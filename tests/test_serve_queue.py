"""Tests for repro.serve.queue — request FIFO, the multi-tenant priority
+ WFQ scheduler, and the adaptive batch sizer."""

import pytest

from repro.exceptions import ConfigurationError, ServeError
from repro.serve.queue import (
    AdaptiveBatchSizer,
    Request,
    RequestQueue,
    TenantScheduler,
)


def req(i, t=0.0):
    return Request(req_id=i, row=i, t_arrival=t)


def treq(i, tenant="a", cls=0, version=1, t=0.0):
    return Request(
        req_id=i, row=i, t_arrival=t, version=version,
        tenant=tenant, priority_class=cls,
    )


class TestRequest:
    def test_latency_requires_completion(self):
        r = req(0, t=1.0)
        with pytest.raises(ServeError, match="not completed"):
            r.latency_s
        r.t_done = 1.5
        assert r.latency_s == pytest.approx(0.5)

    def test_queue_delay_requires_dispatch(self):
        r = req(0, t=1.0)
        with pytest.raises(ServeError, match="never dispatched"):
            r.queue_s
        r.t_dispatch = 1.2
        assert r.queue_s == pytest.approx(0.2)


class TestRequestQueue:
    def test_fifo_order(self):
        q = RequestQueue()
        for i in range(5):
            q.push(req(i))
        batch = q.pop_batch(3)
        assert [r.req_id for r in batch] == [0, 1, 2]
        assert [r.req_id for r in q.pop_batch(10)] == [3, 4]

    def test_depth_and_high_water(self):
        q = RequestQueue()
        for i in range(4):
            q.push(req(i))
        q.pop_batch(3)
        q.push(req(4))
        assert q.depth == 2
        assert q.max_depth == 4
        assert q.total_enqueued == 5
        assert len(q) == 2

    def test_pop_from_empty_is_empty(self):
        assert RequestQueue().pop_batch(8) == []

    def test_pop_batch_validates_size(self):
        with pytest.raises(ConfigurationError):
            RequestQueue().pop_batch(0)


class TestAdmissionControl:
    def test_push_beyond_limit_sheds(self):
        q = RequestQueue(max_depth=2)
        assert q.push(req(0)) and q.push(req(1))
        rejected = req(2)
        assert q.push(rejected) is False
        assert rejected.shed is True
        assert q.n_shed == 1
        assert q.depth == 2
        assert q.total_enqueued == 2  # shed pushes never count as accepted

    def test_draining_reopens_admission(self):
        q = RequestQueue(max_depth=1)
        q.push(req(0))
        assert q.push(req(1)) is False
        q.pop_batch(1)
        assert q.push(req(2)) is True
        assert q.n_shed == 1

    def test_unbounded_by_default(self):
        q = RequestQueue()
        assert q.max_depth_limit is None
        for i in range(500):
            assert q.push(req(i))
        assert q.n_shed == 0

    def test_limit_validated(self):
        with pytest.raises(ConfigurationError, match="max_depth"):
            RequestQueue(max_depth=0)


class TestVersionPinning:
    def vreq(self, i, version):
        r = req(i)
        r.version = version
        return r

    def test_pop_batch_stops_at_version_boundary(self):
        q = RequestQueue()
        for i, v in enumerate([1, 1, 1, 2, 2]):
            q.push(self.vreq(i, v))
        first = q.pop_batch(8)
        assert [r.req_id for r in first] == [0, 1, 2]
        assert {r.version for r in first} == {1}
        second = q.pop_batch(8)
        assert [r.req_id for r in second] == [3, 4]
        assert {r.version for r in second} == {2}

    def test_boundary_respects_arrival_order(self):
        """Interleaved versions split into arrival-ordered uniform runs."""
        q = RequestQueue()
        for i, v in enumerate([1, 2, 1]):
            q.push(self.vreq(i, v))
        batches = [q.pop_batch(8) for _ in range(3)]
        assert [[r.req_id for r in b] for b in batches] == [[0], [1], [2]]


class TestTenantScheduler:
    def test_single_tenant_fifo_matches_request_queue(self):
        """One tenant, one class: the scheduler degenerates to a FIFO."""
        scheduler = TenantScheduler()
        for i in range(5):
            assert scheduler.push(treq(i)) is None
        assert [r.req_id for r in scheduler.pop_batch(3)] == [0, 1, 2]
        assert [r.req_id for r in scheduler.pop_batch(10)] == [3, 4]

    def test_config_validated(self):
        with pytest.raises(ConfigurationError):
            TenantScheduler(n_priority_classes=0)
        with pytest.raises(ConfigurationError):
            TenantScheduler(max_depth=0)
        with pytest.raises(ConfigurationError):
            TenantScheduler(admission_utilization=1.5)
        with pytest.raises(ConfigurationError):
            TenantScheduler(weights={"a": 0.0})
        with pytest.raises(ConfigurationError):
            TenantScheduler(quantum=0.0)

    def test_rejects_out_of_range_class(self):
        scheduler = TenantScheduler(n_priority_classes=2)
        with pytest.raises(ConfigurationError, match="priority_class"):
            scheduler.push(treq(0, cls=2))

    def test_strict_priority_across_tiers(self):
        scheduler = TenantScheduler(n_priority_classes=2)
        scheduler.push(treq(0, cls=1))
        scheduler.push(treq(1, cls=0))
        scheduler.push(treq(2, cls=1))
        assert scheduler.next_class() == 0
        assert [r.req_id for r in scheduler.pop_batch(8)] == [1]
        assert scheduler.next_class() == 1
        assert [r.req_id for r in scheduler.pop_batch(8)] == [0, 2]

    def test_batch_never_mixes_classes_or_versions(self):
        scheduler = TenantScheduler(n_priority_classes=2)
        scheduler.push(treq(0, cls=0, version=1))
        scheduler.push(treq(1, cls=0, version=2))
        scheduler.push(treq(2, cls=1, version=1))
        assert [r.req_id for r in scheduler.pop_batch(8)] == [0]
        assert [r.req_id for r in scheduler.pop_batch(8)] == [1]
        assert [r.req_id for r in scheduler.pop_batch(8)] == [2]

    def test_batch_mixes_tenants_within_class(self):
        scheduler = TenantScheduler()
        scheduler.push(treq(0, tenant="a"))
        scheduler.push(treq(1, tenant="b"))
        batch = scheduler.pop_batch(8)
        assert {r.tenant for r in batch} == {"a", "b"}

    def test_capacity_shed_at_door_for_lone_tenant(self):
        """A single tenant at capacity keeps RequestQueue semantics:
        the newest arrival is the one shed."""
        scheduler = TenantScheduler(max_depth=2)
        assert scheduler.push(treq(0)) is None
        assert scheduler.push(treq(1)) is None
        rejected = treq(2)
        assert scheduler.push(rejected) is rejected
        assert rejected.shed and rejected.shed_reason == "capacity"
        assert scheduler.n_shed == 1
        assert scheduler.shed_by_tenant == {"a": 1}
        assert scheduler.depth == 2
        assert scheduler.total_enqueued == 2

    def test_higher_priority_displaces_lower(self):
        scheduler = TenantScheduler(n_priority_classes=2, max_depth=2)
        low0, low1 = treq(0, cls=1), treq(1, cls=1)
        scheduler.push(low0)
        scheduler.push(low1)
        high = treq(2, cls=0)
        victim = scheduler.push(high)
        assert victim is low1  # newest request of the worst tier
        assert victim.shed and victim.shed_reason == "displaced"
        assert scheduler.depth == 2
        assert [r.req_id for r in scheduler.pop_batch(8)] == [2]
        assert [r.req_id for r in scheduler.pop_batch(8)] == [0]

    def test_same_class_displaces_only_deeper_tenant(self):
        scheduler = TenantScheduler(max_depth=3)
        scheduler.push(treq(0, tenant="hog"))
        scheduler.push(treq(1, tenant="hog"))
        scheduler.push(treq(2, tenant="light"))
        arrival = treq(3, tenant="light")
        victim = scheduler.push(arrival)
        assert victim is not None and victim.tenant == "hog"
        assert victim.req_id == 1  # the hog's newest request
        # "light" is now the deepest tenant (2 vs 1): its next arrival
        # has nobody strictly deeper to displace and sheds at the door.
        rejected = treq(4, tenant="light")
        assert scheduler.push(rejected) is rejected
        assert rejected.shed_reason == "capacity"

    def test_utilization_gate_spares_class_zero(self):
        scheduler = TenantScheduler(
            n_priority_classes=2, admission_utilization=0.5, n_devices=1,
        )
        scheduler.observe_busy(0.9)  # utilization 0.9 at now=1.0
        shed = treq(0, cls=1, t=1.0)
        assert scheduler.push(shed, now=1.0) is shed
        assert shed.shed_reason == "utilization"
        kept = treq(1, cls=0, t=1.0)
        assert scheduler.push(kept, now=1.0) is None
        assert scheduler.shed_by_class == {1: 1}

    def test_drr_weights_bias_the_drain(self):
        scheduler = TenantScheduler(weights={"a": 3.0, "b": 1.0})
        for i in range(80):
            scheduler.push(treq(i, tenant="a" if i % 2 else "b"))
        batch = scheduler.pop_batch(4)
        # First visit: "b" arrived first but "a" holds 3 credits to its 1.
        assert sorted(r.tenant for r in batch).count("a") == 3

    def test_depth_accounting_and_high_water(self):
        scheduler = TenantScheduler(n_priority_classes=2)
        for i in range(4):
            scheduler.push(treq(i, cls=i % 2))
        assert scheduler.depth == 4
        assert scheduler.class_depth(0) == 2
        assert scheduler.class_depth(1) == 2
        scheduler.pop_batch(2)
        assert scheduler.depth == 2
        assert scheduler.max_depth == 4
        assert len(scheduler) == 2

    def test_pop_from_empty_is_empty(self):
        assert TenantScheduler().pop_batch(8) == []
        assert TenantScheduler().next_class() is None

    def test_pop_batch_validates_size(self):
        with pytest.raises(ConfigurationError):
            TenantScheduler().pop_batch(0)


class TestAdaptiveBatchSizer:
    def test_defaults_start_at_b_min(self):
        sizer = AdaptiveBatchSizer(b_min=2, b_max=64)
        assert sizer.cap == 2

    @pytest.mark.parametrize("kwargs", [
        dict(b_min=0), dict(b_min=8, b_max=4), dict(beta=0.0),
        dict(beta=-1.0), dict(target_latency_s=0.0), dict(b_init=500),
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveBatchSizer(**kwargs)

    def test_fast_batches_grow_the_cap(self):
        sizer = AdaptiveBatchSizer(target_latency_s=1e-3, beta=0.5)
        before = sizer.cap
        for _ in range(6):
            sizer.observe(sizer.cap, 1e-4)  # 10x under the SLO
        assert sizer.cap > before

    def test_slow_batches_shrink_the_cap(self):
        sizer = AdaptiveBatchSizer(
            b_init=64, b_max=256, target_latency_s=1e-3, beta=0.5
        )
        for _ in range(6):
            sizer.observe(sizer.cap, 5e-3)  # 5x over the SLO
        assert sizer.cap < 64

    def test_on_target_is_a_fixed_point(self):
        sizer = AdaptiveBatchSizer(b_init=32, b_max=256, target_latency_s=1e-3)
        for _ in range(5):
            assert sizer.observe(sizer.cap, 1e-3) == 32

    def test_clamped_to_bounds(self):
        sizer = AdaptiveBatchSizer(b_min=1, b_max=8, target_latency_s=1e-3)
        for _ in range(50):
            sizer.observe(sizer.cap, 1e-6)
        assert sizer.cap == 8
        for _ in range(50):
            sizer.observe(sizer.cap, 1.0)
        assert sizer.cap == 1

    def test_sub_integer_progress_accumulates(self):
        """Small nudges that round to no change must still compound."""
        sizer = AdaptiveBatchSizer(
            b_init=10, b_max=256, beta=0.01, target_latency_s=1e-3
        )
        caps = {sizer.observe(sizer.cap, 5e-4) for _ in range(60)}
        assert max(caps) > 10  # a 0.5% step per observation, compounded

    def test_converges_to_service_model(self):
        """Against service = fixed + per_item * b, the cap settles where the
        batch meets the SLO — the amortization equilibrium."""
        fixed, per_item, slo = 1e-4, 1e-5, 1e-3
        sizer = AdaptiveBatchSizer(b_max=512, beta=0.5, target_latency_s=slo)
        for _ in range(200):
            b = sizer.cap
            sizer.observe(b, fixed + per_item * b)
        expected = (slo - fixed) / per_item  # 90
        assert abs(sizer.cap - expected) / expected < 0.15

    def test_history_records_caps(self):
        sizer = AdaptiveBatchSizer()
        caps = [sizer.observe(sizer.cap, 1e-6) for _ in range(4)]
        assert sizer.history == caps
        assert caps == sorted(caps)  # pure growth under-SLO

    def test_observe_validates_inputs(self):
        sizer = AdaptiveBatchSizer()
        with pytest.raises(ConfigurationError):
            sizer.observe(0, 1e-3)
        with pytest.raises(ConfigurationError):
            sizer.observe(1, -1.0)
