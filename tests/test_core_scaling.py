"""Tests for repro.core.scaling — Algorithm 1 semantics, line by line."""

import pytest

from repro.core.scaling import scale_batch_sizes
from repro.exceptions import ConfigurationError

BOUNDS = dict(b_min=16, b_max=128, beta=8.0)


class TestAlgorithm1:
    def test_faster_gpu_grows_batch(self):
        """Line 3-5: u_i > mean and within b_max -> batch grows, lr scales."""
        decision = scale_batch_sizes(
            [64, 64], [0.1, 0.1], [12, 8], **BOUNDS
        )
        # mean = 10; GPU0: 64 + 8*(12-10) = 80; GPU1: 64 - 8*2 = 48.
        assert decision.batch_sizes == (80, 48)
        assert decision.learning_rates[0] == pytest.approx(0.1 * 80 / 64)
        assert decision.learning_rates[1] == pytest.approx(0.1 * 48 / 64)
        assert decision.changed == (True, True)
        assert decision.mean_updates == 10.0

    def test_no_change_when_updates_equal(self):
        decision = scale_batch_sizes([64, 64, 64], [0.1] * 3, [5, 5, 5], **BOUNDS)
        assert decision.batch_sizes == (64, 64, 64)
        assert decision.learning_rates == (0.1, 0.1, 0.1)
        assert not decision.any_changed

    def test_b_max_guard_blocks_growth(self):
        """Line 3's bound: if b + beta*(u - mu) > b_max, no change at all."""
        decision = scale_batch_sizes(
            [120, 64], [0.1, 0.1], [14, 6], **BOUNDS
        )
        # GPU0 proposal: 120 + 8*4 = 152 > 128 -> blocked (stays 120).
        assert decision.batch_sizes[0] == 120
        assert decision.learning_rates[0] == 0.1
        assert not decision.changed[0]

    def test_b_min_guard_blocks_shrink(self):
        decision = scale_batch_sizes(
            [20, 64], [0.1, 0.1], [2, 14], **BOUNDS
        )
        # GPU0 proposal: 20 - 8*6 = -28 < 16 -> blocked.
        assert decision.batch_sizes[0] == 20
        assert not decision.changed[0]

    def test_growth_to_exactly_b_max_allowed(self):
        decision = scale_batch_sizes(
            [120, 64], [0.1, 0.1], [11, 9], **BOUNDS
        )
        # proposal: 120 + 8*1 = 128 == b_max -> allowed.
        assert decision.batch_sizes[0] == 128

    def test_shrink_to_exactly_b_min_allowed(self):
        decision = scale_batch_sizes(
            [24, 64], [0.1, 0.1], [9, 11], **BOUNDS
        )
        # proposal: 24 - 8*1 = 16 == b_min -> allowed.
        assert decision.batch_sizes[0] == 16

    def test_linear_lr_rule_uses_realized_ratio(self):
        """LR must scale by the *integer* batch actually adopted."""
        decision = scale_batch_sizes(
            [64, 64, 64], [0.1] * 3, [7, 5, 6], b_min=16, b_max=128, beta=5.0
        )
        for b_old, b_new, lr_old, lr_new in zip(
            (64, 64, 64), decision.batch_sizes, (0.1,) * 3,
            decision.learning_rates,
        ):
            assert lr_new == pytest.approx(lr_old * b_new / b_old)

    def test_fractional_proposal_rounded(self):
        decision = scale_batch_sizes(
            [64, 64], [0.1, 0.1], [11, 10], b_min=16, b_max=128, beta=0.5
        )
        # mean 10.5; GPU0: 64 + 0.5*0.5 = 64.25 -> rounds back to 64.
        assert decision.batch_sizes[0] == 64
        assert not decision.changed[0]

    def test_single_gpu_never_changes(self):
        decision = scale_batch_sizes([64], [0.1], [10], **BOUNDS)
        assert decision.batch_sizes == (64,)
        assert not decision.any_changed

    def test_convergence_to_steady_state(self):
        """Iterating Algorithm 1 on a fixed speed skew reaches update parity.

        Simulate GPUs whose update count is inversely proportional to batch
        size times relative speed; repeated scaling must shrink the spread
        in update counts (that is the algorithm's stated goal).
        """
        speeds = [1.0, 0.85, 0.75, 0.68]
        mega = 128 * 40
        b = [128, 128, 128, 128]
        lr = [0.1] * 4
        spreads = []
        for _ in range(25):
            # Work share proportional to speed/batch-time; a GPU's updates
            # are (its share of the mega-batch) / its batch size.
            rates = [s / bi for s, bi in zip(speeds, b)]  # batches/sec
            total_rate = sum(bi * r for bi, r in zip(b, rates))
            duration = mega / total_rate
            updates = [max(1, round(r * duration)) for r in rates]
            spreads.append(max(updates) - min(updates))
            decision = scale_batch_sizes(
                b, lr, updates, b_min=16, b_max=128, beta=8.0
            )
            b, lr = list(decision.batch_sizes), list(decision.learning_rates)
        assert spreads[-1] <= 1
        assert spreads[-1] <= spreads[0]
        # Faster GPUs ended with at least as large batches as slower ones.
        assert b[0] >= b[-1]

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            scale_batch_sizes([], [], [], **BOUNDS)
        with pytest.raises(ConfigurationError):
            scale_batch_sizes([64], [0.1, 0.2], [5], **BOUNDS)
        with pytest.raises(ConfigurationError):
            scale_batch_sizes([64], [0.1], [5], b_min=0, b_max=128, beta=1.0)
        with pytest.raises(ConfigurationError):
            scale_batch_sizes([64], [0.1], [5], b_min=16, b_max=128, beta=0.0)
        with pytest.raises(ConfigurationError):
            scale_batch_sizes([200], [0.1], [5], **BOUNDS)  # b out of bounds
        with pytest.raises(ConfigurationError):
            scale_batch_sizes([64], [0.0], [5], **BOUNDS)  # lr <= 0
        with pytest.raises(ConfigurationError):
            scale_batch_sizes([64], [0.1], [-1], **BOUNDS)  # negative updates
