"""Tests for repro.sparse.ops and repro.sparse.optimizer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.sparse.model_state import ModelState
from repro.sparse.ops import (
    estimate_step_flops,
    sampled_logits,
    scatter_columns_add,
    sparse_row_times_dense,
)
from repro.sparse.optimizer import MomentumSGD, sgd_step

SPEC = [("W", (10,))]


class TestSparseRowTimesDense:
    def test_matches_dense_product(self):
        rng = np.random.default_rng(0)
        X = sp.random(5, 20, density=0.3, random_state=rng, format="csr",
                      dtype=np.float32)
        W = rng.normal(size=(20, 7)).astype(np.float32)
        for row in range(5):
            got = sparse_row_times_dense(X, row, W)
            want = X[row].toarray().ravel() @ W
            assert np.allclose(got, want, atol=1e-5)

    def test_empty_row(self):
        X = sp.csr_matrix((2, 4), dtype=np.float32)
        W = np.ones((4, 3), dtype=np.float32)
        assert np.allclose(sparse_row_times_dense(X, 0, W), 0.0)


class TestSampledLogits:
    def test_matches_full_computation(self):
        rng = np.random.default_rng(1)
        h = rng.normal(size=6).astype(np.float32)
        W = rng.normal(size=(6, 12)).astype(np.float32)
        b = rng.normal(size=12).astype(np.float32)
        active = np.array([0, 3, 11])
        got = sampled_logits(h, W, b, active)
        want = (h @ W + b)[active]
        assert np.allclose(got, want, atol=1e-5)

    def test_2d_hidden(self):
        rng = np.random.default_rng(1)
        h = rng.normal(size=(4, 6)).astype(np.float32)
        W = rng.normal(size=(6, 12)).astype(np.float32)
        b = np.zeros(12, dtype=np.float32)
        active = np.array([1, 2])
        assert sampled_logits(h, W, b, active).shape == (4, 2)

    def test_non_1d_active_rejected(self):
        with pytest.raises(ConfigurationError):
            sampled_logits(
                np.zeros(3, dtype=np.float32),
                np.zeros((3, 4), dtype=np.float32),
                np.zeros(4, dtype=np.float32),
                np.zeros((2, 2), dtype=np.int64),
            )


class TestScatterColumnsAdd:
    def test_duplicate_indices_accumulate(self):
        W = np.zeros((2, 5), dtype=np.float32)
        active = np.array([1, 1, 3])
        update = np.ones((2, 3), dtype=np.float32)
        scatter_columns_add(W, active, update)
        assert W[0, 1] == pytest.approx(2.0)
        assert W[0, 3] == pytest.approx(1.0)


class TestEstimateStepFlops:
    def test_components_positive_and_scaling(self):
        f1 = estimate_step_flops(32, 1000, (100, 16, 50))
        f2 = estimate_step_flops(64, 2000, (100, 16, 50))
        assert f2["sparse"] == pytest.approx(2 * f1["sparse"])
        assert f2["dense"] == pytest.approx(2 * f1["dense"])
        assert all(v > 0 for v in f1.values())

    def test_active_labels_shrinks_cost(self):
        full = estimate_step_flops(1, 50, (100, 16, 1000))
        sampled = estimate_step_flops(1, 50, (100, 16, 1000), active_labels=32)
        assert sampled["dense"] < full["dense"]
        assert sampled["update"] < full["update"]

    def test_too_few_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_step_flops(1, 1, (10,))


class TestSgdStep:
    def test_in_place_update(self):
        state = ModelState.from_vector(SPEC, np.ones(10, dtype=np.float32))
        grad = ModelState.from_vector(SPEC, np.full(10, 2.0, dtype=np.float32))
        sgd_step(state, grad, lr=0.5)
        assert np.allclose(state.vector, 0.0)

    def test_invalid_lr_rejected(self):
        state = ModelState.build(SPEC)
        with pytest.raises(ConfigurationError):
            sgd_step(state, state.zeros_like(), lr=0.0)


class TestMomentumSGD:
    def test_first_step_equals_sgd(self):
        state = ModelState.from_vector(SPEC, np.zeros(10, dtype=np.float32))
        grad = ModelState.from_vector(SPEC, np.ones(10, dtype=np.float32))
        MomentumSGD(gamma=0.9).step(state, grad, lr=0.1)
        assert np.allclose(state.vector, -0.1)

    def test_velocity_accumulates(self):
        state = ModelState.build(SPEC)
        grad = ModelState.from_vector(SPEC, np.ones(10, dtype=np.float32))
        opt = MomentumSGD(gamma=0.5)
        opt.step(state, grad, lr=1.0)  # v=1, x=-1
        opt.step(state, grad, lr=1.0)  # v=1.5, x=-2.5
        assert np.allclose(state.vector, -2.5)

    def test_reset_clears_velocity(self):
        state = ModelState.build(SPEC)
        grad = ModelState.from_vector(SPEC, np.ones(10, dtype=np.float32))
        opt = MomentumSGD(gamma=0.9)
        opt.step(state, grad, lr=1.0)
        opt.reset()
        state.vector[...] = 0.0
        opt.step(state, grad, lr=1.0)
        assert np.allclose(state.vector, -1.0)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            MomentumSGD(gamma=1.0)
