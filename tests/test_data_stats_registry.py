"""Tests for repro.data.stats and repro.data.registry."""

import pytest

from repro.data.registry import dataset_names, get_config, load_task
from repro.data.stats import batch_nnz_profile, table1, table1_row
from repro.exceptions import ConfigurationError


class TestTable1:
    def test_row_columns(self, micro_task):
        row = table1_row(micro_task)
        assert row["features"] == micro_task.n_features
        assert row["classes"] == micro_task.n_labels
        assert row["training samples"] == micro_task.train.n_samples

    def test_table_order(self, micro_task):
        rows = table1([micro_task, micro_task])
        assert len(rows) == 2 and rows[0] == rows[1]


class TestBatchNnzProfile:
    def test_profile_fields(self, micro_task):
        prof = batch_nnz_profile(micro_task.train, 64, seed=0)
        assert prof.batch_size == 64
        assert prof.n_batches == micro_task.train.n_samples // 64
        assert prof.min_nnz <= prof.mean_nnz <= prof.max_nnz

    def test_nnz_spread_is_nonzero(self, micro_task):
        # The heterogeneity premise: equal-size batches differ in nnz.
        prof = batch_nnz_profile(micro_task.train, 64, seed=0)
        assert prof.relative_spread > 0.0
        assert prof.coefficient_of_variation > 0.0

    def test_batch_too_large_rejected(self, micro_task):
        with pytest.raises(ValueError):
            batch_nnz_profile(micro_task.train, micro_task.train.n_samples + 1)


class TestRegistry:
    def test_names_listed(self):
        names = dataset_names()
        assert "micro" in names
        assert "amazon670k-tiny" in names
        assert "delicious200k-bench" in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            get_config("nope")

    def test_load_task_deterministic(self):
        a = load_task("micro", seed=7)
        b = load_task("micro", seed=7)
        assert (a.train.X != b.train.X).nnz == 0

    def test_amazon_shape_signature(self):
        # Amazon-670k's defining ratio: more labels than features,
        # very sparse label sets.
        cfg = get_config("amazon670k-bench")
        assert cfg.n_labels > cfg.n_features
        assert cfg.avg_labels_per_sample <= 6

    def test_delicious_shape_signature(self):
        # Delicious-200k: more features than labels, dense label sets.
        cfg = get_config("delicious200k-bench")
        assert cfg.n_features > cfg.n_labels
        assert cfg.avg_labels_per_sample >= 6

    def test_config_names_match_registry_keys(self):
        for name in dataset_names():
            assert get_config(name).name == name
