"""Tests for repro.harness.paper — the one-call reproduction orchestrator."""

import pytest

from repro.harness.paper import reproduce_all


@pytest.fixture(scope="module")
def tiny_report():
    """A minimal full pass on the micro dataset (module-scoped)."""
    progress_log = []
    report = reproduce_all(
        time_budget_s=0.02,
        seed=0,
        datasets=("micro",),
        progress=progress_log.append,
    )
    return report, progress_log


class TestReproduceAll:
    def test_all_artifacts_present(self, tiny_report):
        report, _ = tiny_report
        assert len(report.fig1_rows) == 4
        assert len(report.table1) == 1
        assert set(report.fig4) == {"micro"}
        assert set(report.fig5) == {"micro"}
        assert report.fig6 is not None
        assert len(report.allreduce_rows) > 0

    def test_fig4_grid_complete(self, tiny_report):
        report, _ = tiny_report
        keys = set(report.fig4["micro"])
        assert ("adaptive", 4) in keys
        assert ("elastic", 1) in keys
        assert ("tensorflow", 2) in keys
        assert ("crossbow", 4) in keys

    def test_fig5_includes_slide(self, tiny_report):
        report, _ = tiny_report
        assert ("slide", 1) in report.fig5["micro"]

    def test_render_covers_every_section(self, tiny_report):
        report, _ = tiny_report
        text = report.render()
        for fragment in (
            "Figure 1", "Table I", "Figure 4", "Figure 5a", "Figure 5b",
            "Figure 6a", "Figure 6b", "all-reduce",
        ):
            assert fragment in text, f"missing section: {fragment}"

    def test_progress_callback_invoked(self, tiny_report):
        _, progress_log = tiny_report
        assert any("Figure 4" in msg for msg in progress_log)
        assert any("all-reduce" in msg for msg in progress_log)
