"""Tests for repro.perf.lsh_topk — the batched multi-probe LSH kernel.

The load-bearing property is bit-identity: the vectorized pipeline must
reproduce the retained per-row reference (`Predictor.topk_lsh_reference`)
element for element — same candidate sets, same ranking, same tie-breaks,
same padding — on arbitrary snapshots and hash geometries.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.slide.lsh import SimHashLSH
from repro.perf import profile as kprofile
from repro.perf.lsh_topk import (
    lsh_topk,
    probe_candidates,
    score_entries,
    segmented_topk,
)
from repro.perf.workspace import Workspace
from repro.serve.predictor import Predictor
from repro.serve.snapshot import ModelSnapshot
from repro.sparse.mlp import MLPArchitecture, SparseMLP


def _snapshot(n_features=24, L=96, hidden=32, seed=0):
    arch = MLPArchitecture(n_features, L, hidden=(hidden,))
    state = SparseMLP(arch).init_state(seed=seed)
    return ModelSnapshot(arch=arch, state=state, meta={"dataset": "synth"})


def _queries(n, n_features, seed=0, density=0.4):
    rng = np.random.default_rng(seed)
    M = rng.normal(size=(n, n_features)) * (
        rng.random((n, n_features)) < density
    )
    return sp.csr_matrix(M.astype(np.float32))


class TestBitIdentity:
    @pytest.mark.parametrize("trial", range(6))
    def test_matches_reference_on_random_geometry(self, trial):
        """Randomized tables/bits/probes/k: batched == per-row, bit for bit."""
        rng = np.random.default_rng(100 + trial)
        tables = int(rng.integers(1, 6))
        bits = int(rng.integers(1, 9))
        probes = int(rng.integers(1, bits + 2))
        k = int(rng.integers(1, 12))
        snap = _snapshot(L=int(rng.integers(20, 150)), seed=trial)
        pred = Predictor(
            snap, lsh_tables=tables, lsh_bits=bits, lsh_probes=probes,
            lsh_seed=trial,
        )
        X = _queries(16, snap.arch.n_features, seed=trial)
        assert np.array_equal(
            pred.topk_lsh(X, k), pred.topk_lsh_reference(X, k)
        )

    def test_candidate_sets_match_query_batch(self):
        """CSR candidates == the dict-table union, row by row."""
        rng = np.random.default_rng(7)
        lsh = SimHashLSH(dim=16, n_tables=3, n_bits=5, seed=7)
        lsh.rebuild(rng.normal(size=(16, 80)).astype(np.float32))
        H = rng.normal(size=(12, 16)).astype(np.float32)
        indptr, ids = probe_candidates(lsh, H, n_probes=3)
        ref = lsh.query_batch(H, n_probes=3)
        assert indptr.shape == (13,)
        for i, cand in enumerate(ref):
            assert np.array_equal(ids[indptr[i]:indptr[i + 1]], cand)

    def test_workspace_mask_reuse_is_clean(self):
        """Repeated calls through one workspace must not leak mask bits."""
        snap = _snapshot()
        pred = Predictor(
            snap, workspace=Workspace(), lsh_tables=2, lsh_bits=6,
        )
        X = _queries(10, snap.arch.n_features, seed=1)
        first = pred.topk_lsh(X, 5)
        assert np.array_equal(first, pred.topk_lsh(X, 5))
        assert np.array_equal(first, pred.topk_lsh_reference(X, 5))


class TestSegmentedTopk:
    def test_empty_candidate_row_pads_lowest_ids(self):
        indptr = np.array([0, 0, 3], dtype=np.int64)
        ids = np.array([5, 7, 9], dtype=np.int64)
        logits = np.array([1.0, 3.0, 2.0], dtype=np.float32)
        out = segmented_topk(indptr, ids, logits, L=20, k=4)
        # Row 0 retrieved nothing: deterministic fill with the lowest ids.
        assert np.array_equal(out[0], [0, 1, 2, 3])
        # Row 1 is underfull (3 < 4): all candidates best-first, then fill.
        assert np.array_equal(out[1], [7, 9, 5, 0])

    def test_all_rows_underfull(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        ids = np.array([4, 0], dtype=np.int64)
        logits = np.array([2.0, -1.0], dtype=np.float32)
        out = segmented_topk(indptr, ids, logits, L=6, k=3)
        assert np.array_equal(out[0], [4, 0, 1])
        assert np.array_equal(out[1], [0, 1, 2])

    def test_full_row_ties_break_to_lowest_label_id(self):
        indptr = np.array([0, 4], dtype=np.int64)
        ids = np.array([2, 5, 8, 11], dtype=np.int64)
        logits = np.array([1.0, 1.0, 1.0, 2.0], dtype=np.float32)
        out = segmented_topk(indptr, ids, logits, L=16, k=2)
        assert np.array_equal(out[0], [11, 2])

    def test_mixed_full_and_underfull_rows(self):
        indptr = np.array([0, 5, 6], dtype=np.int64)
        ids = np.array([1, 3, 4, 8, 9, 2], dtype=np.int64)
        logits = np.array(
            [0.5, 2.0, -1.0, 2.0, 0.0, 7.0], dtype=np.float32
        )
        out = segmented_topk(indptr, ids, logits, L=10, k=3)
        assert np.array_equal(out[0], [3, 8, 1])  # tie 2.0: lower id first
        assert np.array_equal(out[1], [2, 0, 1])


class TestScoreEntries:
    def test_matches_dense_logits(self):
        rng = np.random.default_rng(0)
        H = rng.normal(size=(5, 8)).astype(np.float32)
        W = rng.normal(size=(8, 12)).astype(np.float32)
        b = rng.normal(size=12).astype(np.float32)
        rows = np.array([0, 0, 2, 4], dtype=np.int64)
        ids = np.array([3, 11, 0, 7], dtype=np.int64)
        logits = score_entries(H, np.ascontiguousarray(W.T), b, rows, ids)
        dense = H @ W + b
        assert np.allclose(logits, dense[rows, ids], atol=1e-5)


class TestKernelEdges:
    def test_empty_query_block(self):
        rng = np.random.default_rng(1)
        lsh = SimHashLSH(dim=8, n_tables=2, n_bits=3, seed=1)
        W = rng.normal(size=(8, 20)).astype(np.float32)
        lsh.rebuild(W)
        H = np.empty((0, 8), dtype=np.float32)
        out, counts = lsh_topk(
            lsh, H, np.ascontiguousarray(W.T),
            np.zeros(20, dtype=np.float32), 5,
        )
        assert out.shape == (0, 5)
        assert counts.shape == (0,)

    def test_no_workspace_allocates_fresh_mask(self):
        rng = np.random.default_rng(2)
        lsh = SimHashLSH(dim=8, n_tables=4, n_bits=2, seed=2)
        W = rng.normal(size=(8, 30)).astype(np.float32)
        lsh.rebuild(W)
        H = rng.normal(size=(6, 8)).astype(np.float32)
        indptr, ids = probe_candidates(lsh, H, n_probes=1)
        ref = lsh.query_batch(H, n_probes=1)
        for i, cand in enumerate(ref):
            assert np.array_equal(ids[indptr[i]:indptr[i + 1]], cand)


class TestProfileCounters:
    def test_phases_recorded_with_units(self):
        snap = _snapshot()
        pred = Predictor(snap, lsh_tables=4, lsh_bits=3, lsh_probes=2)
        X = _queries(8, snap.arch.n_features)
        prof = kprofile.KernelProfile()
        kprofile.activate(prof)
        try:
            pred.topk_lsh(X, 5)
        finally:
            kprofile.deactivate()
        assert {"lsh_probe", "lsh_gather", "lsh_score", "lsh_topk"} <= set(
            prof.stats
        )
        # probe units = n · tables · probes bucket lookups
        assert prof.stats["lsh_probe"][2] == 8 * 4 * 2
        # gather counts raw bucket entries; score counts the deduped
        # candidates — dedup can only shrink the stream.
        assert 0 < prof.stats["lsh_score"][2] <= prof.stats["lsh_gather"][2]
        assert prof.stats["lsh_topk"][2] == 8

    def test_disabled_profile_records_nothing(self):
        snap = _snapshot()
        pred = Predictor(snap)
        X = _queries(4, snap.arch.n_features)
        assert kprofile.active is None
        pred.topk_lsh(X, 3)  # must not raise with the slot empty
