"""Tests for repro.core.theory — the §III-A analytical characterization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    effective_learning_rate,
    equivalent_batch_envelope,
    stale_sync_error_bound,
    updates_balance_index,
)
from repro.exceptions import ConfigurationError


class TestEquivalentBatchEnvelope:
    def test_basic_envelope(self):
        history = [(128, 128), (100, 128), (90, 120)]
        assert equivalent_batch_envelope(history) == (90, 128)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            equivalent_batch_envelope([])
        with pytest.raises(ConfigurationError):
            equivalent_batch_envelope([()])

    def test_real_run_nested_in_configured_bounds(self, micro_task, het_server):
        """§III-A: the realized envelope sits inside [b_min, b_max]."""
        from repro.core.adaptive import AdaptiveSGDTrainer
        from repro.core.config import AdaptiveSGDConfig

        cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=32)
        trace = AdaptiveSGDTrainer(
            micro_task, het_server, cfg, hidden=(32,), init_seed=1,
            data_seed=1, eval_samples=64,
        ).run(time_budget_s=0.05)
        lo, hi = equivalent_batch_envelope(trace.batch_size_history)
        assert cfg.b_min <= lo <= hi <= cfg.b_max


class TestStaleSyncBound:
    def test_zero_staleness_is_classic_rate(self):
        assert stale_sync_error_bound(100, 0) == pytest.approx(0.1)

    def test_monotone_in_staleness(self):
        assert stale_sync_error_bound(100, 4) > stale_sync_error_bound(100, 1)

    def test_monotone_decreasing_in_updates(self):
        assert stale_sync_error_bound(400, 2) < stale_sync_error_bound(100, 2)

    def test_tradeoff_ratio(self):
        """Removing staleness 3 -> 0 is worth a 4x throughput loss."""
        with_staleness = stale_sync_error_bound(400, 3)
        without = stale_sync_error_bound(100, 0)
        assert with_staleness == pytest.approx(without)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stale_sync_error_bound(0, 1)
        with pytest.raises(ConfigurationError):
            stale_sync_error_bound(10, -1)


class TestEffectiveLearningRate:
    def test_uniform_fleet_is_identity(self):
        assert effective_learning_rate([64, 64], [0.4, 0.4]) == pytest.approx(0.4)

    def test_linear_scaling_formula(self):
        """With lr_i = base * b_i / b_max the closed form holds."""
        base, b_max = 0.8, 128
        sizes = [128, 98, 90, 118]
        rates = [base * b / b_max for b in sizes]
        eff = effective_learning_rate(sizes, rates)
        expected = base * sum(b * b for b in sizes) / (
            b_max * sum(sizes)
        )
        assert eff == pytest.approx(expected)
        assert eff < base  # any shrink pulls the effective rate down (D2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            effective_learning_rate([], [])
        with pytest.raises(ConfigurationError):
            effective_learning_rate([64], [0.1, 0.2])
        with pytest.raises(ConfigurationError):
            effective_learning_rate([0], [0.1])


class TestBalanceIndex:
    def test_perfect_parity(self):
        assert updates_balance_index([7, 7, 7, 7]) == pytest.approx(1.0)

    def test_single_worker_floor(self):
        assert updates_balance_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_idle_vacuous(self):
        assert updates_balance_index([0, 0]) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_bounds_property(self, updates):
        index = updates_balance_index(updates)
        assert 1.0 / len(updates) - 1e-12 <= index <= 1.0 + 1e-12

    def test_scaling_improves_balance_in_real_run(self, micro_task, het_server):
        """Algorithm 1's purpose, measured: balance index rises toward 1."""
        from repro.core.adaptive import AdaptiveSGDTrainer
        from repro.core.config import AdaptiveSGDConfig

        cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=32)
        trainer = AdaptiveSGDTrainer(
            micro_task, het_server, cfg, hidden=(32,), init_seed=1,
            data_seed=1, eval_samples=64,
        )
        trainer.run(time_budget_s=0.08)
        records = trainer.staleness.records
        assert len(records) >= 4
        early = updates_balance_index(records[0].updates)
        late = updates_balance_index(records[-1].updates)
        assert late >= early - 1e-9
