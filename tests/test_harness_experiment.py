"""Tests for repro.harness.experiment and repro.harness.sweep."""

import pytest

from repro.core.config import AdaptiveSGDConfig
from repro.exceptions import ConfigurationError
from repro.harness.experiment import ALGORITHMS, ExperimentSpec, run_experiment
from repro.harness.sweep import ablation_grid, sweep


def small_spec(**kwargs):
    defaults = dict(
        dataset="micro",
        algorithms=("adaptive", "elastic"),
        gpu_counts=(2,),
        time_budget_s=0.02,
        config=AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=8),
        eval_samples=64,
        seed=0,
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestExperimentSpec:
    def test_registry_contains_paper_methods(self):
        for name in ("adaptive", "elastic", "tensorflow", "crossbow", "slide"):
            assert name in ALGORITHMS

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(algorithms=("nope",))

    def test_invalid_gpu_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(gpu_counts=(0,))
        with pytest.raises(ConfigurationError):
            small_spec(gpu_counts=())

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(time_budget_s=0.0)

    def test_build_server_fresh_instances(self):
        spec = small_spec()
        assert spec.build_server(2) is not spec.build_server(2)

    def test_tiny_hardware_flag(self):
        tiny = small_spec(tiny_hardware=True).cost_params()
        full = small_spec(tiny_hardware=False).cost_params()
        assert tiny.dense_flops_per_s < full.dense_flops_per_s


class TestRunExperiment:
    def test_grid_keys(self, micro_task):
        results = run_experiment(small_spec(), task=micro_task)
        assert set(results) == {("adaptive", 2), ("elastic", 2)}

    def test_traces_have_points(self, micro_task):
        results = run_experiment(small_spec(), task=micro_task)
        for trace in results.values():
            assert len(trace) >= 2

    def test_slide_runs_once_regardless_of_gpu_grid(self, micro_task):
        spec = small_spec(
            algorithms=("slide",), gpu_counts=(1, 2), time_budget_s=0.002
        )
        results = run_experiment(spec, task=micro_task)
        assert list(results) == [("slide", 1)]

    def test_same_initialization_across_algorithms(self, micro_task):
        """§V-A: 'All the algorithms are initialized with the same model' —
        the t=0 checkpoint accuracy must agree across methods."""
        results = run_experiment(small_spec(), task=micro_task)
        initial = {
            key: trace.points[0].accuracy for key, trace in results.items()
        }
        assert len(set(initial.values())) == 1

    def test_equal_time_budgets(self, micro_task):
        spec = small_spec()
        results = run_experiment(spec, task=micro_task)
        for trace in results.values():
            assert trace.total_time >= spec.time_budget_s * 0.9


class TestSweep:
    def test_sweep_varies_single_knob(self, micro_task):
        base = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=8)
        results = sweep(
            base, "delta", [0.0, 0.2], dataset="micro", n_gpus=2,
            time_budget_s=0.01, eval_samples=64, task=micro_task,
        )
        assert set(results) == {0.0, 0.2}
        for value, trace in results.items():
            assert trace.metadata["sweep_value"] == value
            assert trace.metadata["config"].delta == value

    def test_unknown_knob_rejected(self, micro_task):
        base = AdaptiveSGDConfig()
        with pytest.raises(ConfigurationError):
            sweep(base, "not_a_field", [1], task=micro_task)

    def test_ablation_grid_variants(self):
        base = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=8)
        results = ablation_grid(
            base, dataset="micro", n_gpus=2, time_budget_s=0.01,
            eval_samples=64,
        )
        assert set(results) == {
            "full", "no-perturbation", "paper-denormalized",
            "no-batch-scaling", "uniform-merge", "no-momentum",
            "updates-times-batch",
        }
        assert not results[
            "no-perturbation"
        ].metadata["config"].enable_perturbation
        assert results["no-momentum"].metadata["config"].gamma == 0.0
