"""Tests for repro.data.libsvm — multi-label libSVM IO."""

import numpy as np
import pytest

from repro.data.libsvm import read_libsvm, write_libsvm
from repro.data.registry import load_task
from repro.exceptions import DataFormatError


@pytest.fixture(scope="module")
def tiny_split():
    return load_task("micro", seed=2).test


class TestRoundTrip:
    def test_with_header(self, tiny_split, tmp_path):
        path = write_libsvm(tiny_split, tmp_path / "data.txt", header=True)
        back = read_libsvm(path)
        assert back.n_samples == tiny_split.n_samples
        assert back.n_features == tiny_split.n_features
        assert back.n_labels == tiny_split.n_labels
        assert np.allclose(
            back.X.toarray(), tiny_split.X.toarray(), atol=1e-4
        )
        assert (back.Y != tiny_split.Y).nnz == 0

    def test_without_header_needs_dims(self, tiny_split, tmp_path):
        path = write_libsvm(tiny_split, tmp_path / "nh.txt", header=False)
        back = read_libsvm(
            path,
            n_features=tiny_split.n_features,
            n_labels=tiny_split.n_labels,
        )
        assert (back.Y != tiny_split.Y).nnz == 0

    def test_without_header_infers_dims(self, tiny_split, tmp_path):
        path = write_libsvm(tiny_split, tmp_path / "nh.txt", header=False)
        back = read_libsvm(path)
        # Inferred dims are the max observed ids + 1 (<= true dims).
        assert back.n_features <= tiny_split.n_features
        assert back.n_samples == tiny_split.n_samples


class TestParsing:
    def test_basic_lines(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("3 5 4\n0,2 1:0.5 3:1.25\n1 0:2\n3 4:0.1 2:0.2\n")
        ds = read_libsvm(path)
        assert ds.n_samples == 3
        assert ds.n_features == 5 and ds.n_labels == 4
        assert ds.X[0, 3] == pytest.approx(1.25)
        assert sorted(ds.Y[0].indices.tolist()) == [0, 2]

    def test_one_based_ids(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("1,2 1:0.5 3:1.0\n")
        ds = read_libsvm(path, zero_based=False, n_features=4, n_labels=4)
        assert ds.X[0, 0] == pytest.approx(0.5)
        assert sorted(ds.Y[0].indices.tolist()) == [0, 1]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("0 1:1\n\n1 2:1\n")
        assert read_libsvm(path).n_samples == 2

    def test_malformed_feature_rejected(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("0 notafeature\n")
        with pytest.raises(DataFormatError, match="malformed"):
            read_libsvm(path)

    def test_sample_without_labels_rejected(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("1:0.5 2:0.5\n")
        with pytest.raises(DataFormatError, match="no labels"):
            read_libsvm(path)

    def test_feature_id_beyond_declared_dims_rejected(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("1 2 2\n0 5:1.0\n")
        with pytest.raises(DataFormatError, match="feature id"):
            read_libsvm(path)

    def test_duplicate_labels_collapse(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("0,0,1 1:1\n")
        ds = read_libsvm(path)
        assert ds.Y.nnz == 2
        assert (ds.Y.data == 1.0).all()
