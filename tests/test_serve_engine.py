"""Tests for repro.serve.engine — the sim-clock serving loop."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.serve import (
    LoadSpec,
    ModelSnapshot,
    Predictor,
    ServingEngine,
    generate_arrivals,
    sample_query_rows,
)
from repro.sparse.mlp import MLPArchitecture, SparseMLP


@pytest.fixture(scope="module")
def predictor(micro_task):
    arch = MLPArchitecture(
        micro_task.n_features, micro_task.n_labels, hidden=(32,)
    )
    state = SparseMLP(arch).init_state(seed=21)
    snapshot = ModelSnapshot(arch=arch, state=state, meta={"dataset": "micro"})
    return Predictor(snapshot)


def serve_server(n_gpus=2, seed=0):
    return make_server(
        n_gpus, cost_params=GpuCostParams.tiny_model_profile(), seed=seed
    )


def saturating_arrivals(predictor, X, n_requests, *, seed=0, factor=10.0):
    """Arrivals well past the cluster's sequential capacity."""
    work = predictor.workload(X[:1])
    per_request = serve_server().gpus[0].cost_model.inference_time(
        work, n_active_gpus=2
    )
    rate = factor * 2 / per_request
    spec = LoadSpec(n_requests=n_requests, rate_rps=rate, seed=seed)
    return generate_arrivals(spec)


class TestSequentialMode:
    def test_all_requests_complete(self, predictor, micro_task):
        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 120)
        engine = ServingEngine(predictor, serve_server(), mode="sequential")
        result = engine.serve(X, arrivals, k=5)
        assert result.mode == "sequential"
        assert len(result.requests) == 120
        assert all(r.t_done is not None for r in result.requests)
        assert sum(result.per_device.values()) == 120
        assert result.report.mean_batch_size == 1.0
        assert np.all(result.report.latencies_s > 0)

    def test_responses_carry_topk(self, predictor, micro_task):
        X = micro_task.test.X
        rows = sample_query_rows(X.shape[0], 40, seed=1)
        arrivals = saturating_arrivals(predictor, X, 40)
        engine = ServingEngine(predictor, serve_server(), mode="sequential")
        result = engine.serve(X, arrivals, k=3, row_indices=rows)
        exact = predictor.topk(X[rows], 3)
        for i, request in enumerate(result.requests):
            assert request.labels == exact[i].tolist()


class TestAdaptiveMode:
    def test_coalesces_under_load(self, predictor, micro_task):
        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 200)
        engine = ServingEngine(predictor, serve_server(), mode="adaptive")
        result = engine.serve(X, arrivals, k=5)
        assert all(r.t_done is not None for r in result.requests)
        assert result.report.mean_batch_size > 1.5
        assert result.max_queue_depth >= 1

    def test_beats_sequential_throughput_at_saturation(
        self, predictor, micro_task
    ):
        """The headline property: micro-batching amortizes the fixed
        per-dispatch overhead that rate-limits sequential serving."""
        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 300)
        results = {}
        for mode in ("sequential", "adaptive"):
            engine = ServingEngine(predictor, serve_server(), mode=mode)
            results[mode] = engine.serve(X, arrivals, k=5)
        assert (
            results["adaptive"].report.throughput_rps
            > 2.0 * results["sequential"].report.throughput_rps
        )

    def test_deterministic(self, predictor, micro_task):
        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 80)
        runs = []
        for _ in range(2):
            engine = ServingEngine(predictor, serve_server(), mode="adaptive")
            runs.append(engine.serve(X, arrivals, k=5))
        assert np.array_equal(
            runs[0].report.latencies_s, runs[1].report.latencies_s
        )
        assert runs[0].report.batch_sizes == runs[1].report.batch_sizes

    def test_uses_every_device(self, predictor, micro_task):
        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 200)
        engine = ServingEngine(predictor, serve_server(4), mode="adaptive")
        result = engine.serve(X, arrivals, k=5)
        assert len(result.per_device) == 4
        assert all(n > 0 for n in result.per_device.values())

    def test_lsh_serving(self, predictor, micro_task):
        X = micro_task.test.X
        rows = sample_query_rows(X.shape[0], 60, seed=3)
        arrivals = saturating_arrivals(predictor, X, 60)
        engine = ServingEngine(
            predictor, serve_server(), mode="adaptive", scoring="lsh"
        )
        result = engine.serve(X, arrivals, k=5, row_indices=rows)
        approx = predictor.topk_lsh(X[rows], 5)
        served = {r.req_id: r.labels for r in result.requests}
        for i in range(60):
            assert served[i] == approx[i].tolist()


class TestScoringPolicy:
    def test_lsh_result_fields(self, predictor, micro_task):
        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 50)
        engine = ServingEngine(
            predictor, serve_server(), mode="adaptive", scoring="lsh"
        )
        result = engine.serve(X, arrivals, k=5)
        assert result.scoring == "lsh"
        assert set(result.scoring_batches) == {"lsh"}
        assert sum(result.scoring_batches.values()) == len(
            result.report.batch_sizes
        )
        assert 0.0 < result.mean_candidate_fraction <= 1.0
        as_dict = result.as_dict()
        assert as_dict["scoring"] == "lsh"
        assert "mean_candidate_fraction" in as_dict

    def test_auto_picks_exact_at_small_label_count(
        self, predictor, micro_task
    ):
        """At L=64 the candidate fraction is ~0.75 — the cost model must
        route every batch to the exact path (the small-L crossover side)."""
        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 50)
        engine = ServingEngine(
            predictor, serve_server(), mode="adaptive", scoring="auto"
        )
        result = engine.serve(X, arrivals, k=5)
        assert result.scoring == "auto"
        assert set(result.scoring_batches) == {"exact"}
        # Calibration seeded the crossover signal even though no LSH batch
        # ran — that's what made the exact choice informed, not default.
        assert predictor.observed_candidate_fraction() is not None

    def test_auto_matches_exact_labels_when_it_chooses_exact(
        self, predictor, micro_task
    ):
        X = micro_task.test.X
        rows = sample_query_rows(X.shape[0], 40, seed=4)
        arrivals = saturating_arrivals(predictor, X, 40)
        engine = ServingEngine(
            predictor, serve_server(), mode="adaptive", scoring="auto"
        )
        result = engine.serve(X, arrivals, k=5, row_indices=rows)
        exact = predictor.topk(X[rows], 5)
        served = {r.req_id: r.labels for r in result.requests}
        for i in range(40):
            assert served[i] == exact[i].tolist()

    def test_use_lsh_deprecated_but_equivalent(self, predictor):
        with pytest.warns(DeprecationWarning, match="scoring='lsh'"):
            engine = ServingEngine(predictor, serve_server(), use_lsh=True)
        assert engine.scoring == "lsh"
        assert engine.use_lsh is True

    def test_bad_scoring_rejected(self, predictor):
        with pytest.raises(ConfigurationError, match="scoring"):
            ServingEngine(predictor, serve_server(), scoring="psychic")

    def test_batch_spans_record_scoring(self, predictor, micro_task):
        from repro.telemetry import Telemetry
        from repro.telemetry.analyze import scoring_split
        from repro.telemetry.events import SPAN_SERVE_BATCH
        from repro.telemetry.trace_data import TraceData

        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 60)
        tel = Telemetry(label="scoring-split")
        engine = ServingEngine(
            predictor, serve_server(), mode="adaptive", scoring="lsh",
            telemetry=tel,
        )
        result = engine.serve(X, arrivals, k=5)
        spans = [s for s in tel.spans if s.name == SPAN_SERVE_BATCH]
        assert all(s.args["scoring"] == "lsh" for s in spans)
        assert all(0.0 < s.args["candidate_fraction"] <= 1.0 for s in spans)
        split = scoring_split(TraceData.from_telemetry(tel).run(0))
        assert set(split["paths"]) == {"lsh"}
        assert split["paths"]["lsh"]["batches"] == len(spans)
        assert split["paths"]["lsh"]["samples"] == 60
        assert split["mean_candidate_fraction"] == pytest.approx(
            result.mean_candidate_fraction
        )


class TestValidation:
    def test_bad_mode(self, predictor):
        with pytest.raises(ConfigurationError):
            ServingEngine(predictor, serve_server(), mode="warp")

    def test_empty_arrivals(self, predictor, micro_task):
        engine = ServingEngine(predictor, serve_server())
        with pytest.raises(ConfigurationError):
            engine.serve(micro_task.test.X, np.array([]))

    def test_decreasing_arrivals(self, predictor, micro_task):
        engine = ServingEngine(predictor, serve_server())
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            engine.serve(micro_task.test.X, np.array([0.2, 0.1]))

    def test_row_indices_length_mismatch(self, predictor, micro_task):
        engine = ServingEngine(predictor, serve_server())
        with pytest.raises(ConfigurationError):
            engine.serve(
                micro_task.test.X, np.array([0.0, 1.0]),
                row_indices=np.array([0]),
            )

    def test_row_index_out_of_bounds(self, predictor, micro_task):
        engine = ServingEngine(predictor, serve_server())
        with pytest.raises(ConfigurationError, match="row index"):
            engine.serve(
                micro_task.test.X, np.array([0.0]),
                row_indices=np.array([micro_task.test.X.shape[0]]),
            )


class TestTelemetry:
    def test_spans_and_attribution(self, predictor, micro_task):
        from repro.telemetry import Telemetry
        from repro.telemetry.analyze import analyze_report
        from repro.telemetry.events import SPAN_SERVE_BATCH, SPAN_SERVE_REQUEST

        X = micro_task.test.X
        arrivals = saturating_arrivals(predictor, X, 100)
        tel = Telemetry(label="serve-test")
        engine = ServingEngine(
            predictor, serve_server(), mode="adaptive", telemetry=tel
        )
        result = engine.serve(X, arrivals, k=5)
        batch_spans = [s for s in tel.spans if s.name == SPAN_SERVE_BATCH]
        request_spans = [s for s in tel.spans if s.name == SPAN_SERVE_REQUEST]
        assert len(batch_spans) == len(result.report.batch_sizes)
        assert len(request_spans) == 100
        # Request spans are driver-level (no device lane) and span the full
        # enqueue -> response interval.
        assert all(s.device is None for s in request_spans)
        assert all(s.dur >= 0 for s in request_spans)
        assert all(s.args["device_id"] is not None for s in request_spans)
        # The analytics engine must digest a serving-only trace with the
        # attribution invariant intact.
        report = analyze_report(tel)
        (run,) = report["runs"]
        assert run["attribution"]["max_residual"] <= 1e-6
        samples = sum(d["samples"] for d in run["attribution"]["devices"])
        assert samples == 100
