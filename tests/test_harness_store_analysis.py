"""Tests for repro.harness.store and repro.harness.analysis."""

import warnings

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ConvergenceWarning, DataFormatError
from repro.harness.analysis import (
    auc_accuracy,
    compare,
    detect_divergence,
    detect_plateau,
    smoothed_accuracy,
)
from repro.harness.store import (
    load_result_set,
    load_trace,
    save_result_set,
    save_trace,
)
from repro.harness.traces import TracePoint, TrainingTrace


def make_trace(accs, dt=1.0, algorithm="A", n=4, telemetry=True):
    trace = TrainingTrace(algorithm=algorithm, dataset="d", n_devices=n)
    for i, acc in enumerate(accs):
        trace.record_point(TracePoint(
            time_s=i * dt, epochs=float(i), updates=i * 10,
            samples=i * 100, accuracy=acc, loss=1.0 / (i + 1),
        ))
    if telemetry:
        boundaries = max(len(accs) - 1, 0)
        trace.batch_size_history = [(64, 32)] * boundaries
        trace.perturbation_history = [True] * boundaries
        trace.merge_branch_history = ["updates"] * boundaries
        trace.staleness_history = [1] * boundaries
    trace.metadata = {"seed": 3, "note": "hello"}
    return trace


class TestTraceRoundTrip:
    def test_full_round_trip(self, tmp_path):
        original = make_trace([0.0, 0.3, 0.5, 0.45])
        save_trace(original, tmp_path / "run")
        loaded = load_trace(tmp_path / "run")
        assert loaded.algorithm == original.algorithm
        assert loaded.n_devices == original.n_devices
        assert [p.accuracy for p in loaded.points] == [
            p.accuracy for p in original.points
        ]
        assert [p.updates for p in loaded.points] == [
            p.updates for p in original.points
        ]
        assert loaded.batch_size_history == original.batch_size_history
        assert loaded.perturbation_history == original.perturbation_history
        assert loaded.staleness_history == original.staleness_history
        assert loaded.metadata["seed"] == 3

    def test_metrics_survive_round_trip(self, tmp_path):
        original = make_trace([0.0, 0.3, 0.5])
        save_trace(original, tmp_path / "run")
        loaded = load_trace(tmp_path / "run")
        assert loaded.time_to_accuracy(0.4) == original.time_to_accuracy(0.4)
        assert loaded.best_accuracy == original.best_accuracy

    def test_unserializable_metadata_rejected(self, tmp_path):
        trace = make_trace([0.1])
        trace.metadata["weird"] = object()
        with pytest.raises(DataFormatError, match="weird"):
            save_trace(trace, tmp_path / "run")

    def test_non_finite_metadata_rejected(self, tmp_path):
        trace = make_trace([0.1])
        trace.metadata["bad"] = float("nan")
        with pytest.raises(DataFormatError, match="bad"):
            save_trace(trace, tmp_path / "run")

    def test_path_metadata_round_trips_as_string(self, tmp_path):
        from pathlib import Path

        trace = make_trace([0.1])
        trace.metadata["source"] = tmp_path / "origin.libsvm"
        save_trace(trace, tmp_path / "run")
        loaded = load_trace(tmp_path / "run")
        assert loaded.metadata["source"] == str(tmp_path / "origin.libsvm")
        assert isinstance(loaded.metadata["source"], str)
        # Nested containers go through the same conversion.
        trace.metadata["source"] = {"paths": [Path("a"), Path("b")]}
        save_trace(trace, tmp_path / "run2")
        loaded = load_trace(tmp_path / "run2")
        assert loaded.metadata["source"] == {"paths": ["a", "b"]}

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_trace(tmp_path / "nothing")

    def test_real_trainer_trace_round_trips(self, tmp_path, micro_task, het_server):
        from repro.core.adaptive import AdaptiveSGDTrainer
        from repro.core.config import AdaptiveSGDConfig

        cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=8)
        trace = AdaptiveSGDTrainer(
            micro_task, het_server, cfg, hidden=(32,), init_seed=1,
            data_seed=1, eval_samples=64,
        ).run(time_budget_s=0.01)
        save_trace(trace, tmp_path / "real")
        loaded = load_trace(tmp_path / "real")
        assert loaded.batch_size_history == trace.batch_size_history
        assert [p.time_s for p in loaded.points] == pytest.approx(
            [p.time_s for p in trace.points]
        )


class TestResultSetRoundTrip:
    def test_round_trip(self, tmp_path):
        results = {
            ("adaptive", 4): make_trace([0.0, 0.5], algorithm="Adaptive SGD"),
            ("elastic", 2): make_trace([0.0, 0.4], algorithm="Elastic SGD", n=2),
        }
        save_result_set(results, tmp_path / "grid")
        loaded = load_result_set(tmp_path / "grid")
        assert set(loaded) == set(results)
        assert loaded[("adaptive", 4)].best_accuracy == 0.5

    def test_missing_index_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_result_set(tmp_path)


class TestSmoothing:
    def test_window_one_is_identity(self):
        trace = make_trace([0.1, 0.5, 0.2])
        assert [a for _, a in smoothed_accuracy(trace, window=1)] == [
            pytest.approx(v) for v in (0.1, 0.5, 0.2)
        ]

    def test_window_three_averages(self):
        trace = make_trace([0.0, 0.3, 0.6])
        smoothed = smoothed_accuracy(trace, window=3)
        assert smoothed[1][1] == pytest.approx(0.3)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            smoothed_accuracy(make_trace([0.1]), window=0)


class TestAuc:
    def test_constant_curve(self):
        trace = make_trace([0.4, 0.4, 0.4])
        assert auc_accuracy(trace) == pytest.approx(0.4)

    def test_linear_ramp(self):
        trace = make_trace([0.0, 1.0])
        assert auc_accuracy(trace) == pytest.approx(0.5)

    def test_better_everywhere_has_larger_auc(self):
        low = make_trace([0.0, 0.2, 0.3])
        high = make_trace([0.1, 0.4, 0.6])
        assert auc_accuracy(high) > auc_accuracy(low)

    def test_until_truncates(self):
        trace = make_trace([0.0, 1.0, 0.0])
        assert auc_accuracy(trace, until=1.0) == pytest.approx(0.5)


class TestPlateauAndDivergence:
    def test_plateau_found(self):
        trace = make_trace([0.0, 0.3, 0.5, 0.5, 0.505, 0.5])
        plateau = detect_plateau(trace, tolerance=0.01)
        assert plateau is not None
        assert plateau.start_index == 2

    def test_still_improving_no_plateau(self):
        trace = make_trace([0.0, 0.2, 0.4, 0.6])
        assert detect_plateau(trace, tolerance=0.01) is None

    def test_divergence_warns(self):
        trace = make_trace([0.0, 0.6, 0.3])
        with pytest.warns(ConvergenceWarning):
            assert detect_divergence(trace, drop=0.1)

    def test_stable_run_not_divergent(self):
        trace = make_trace([0.0, 0.5, 0.48])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not detect_divergence(trace, drop=0.1)


class TestCompare:
    def test_winner_by_auc(self):
        a = make_trace([0.1, 0.5, 0.6], algorithm="A")
        b = make_trace([0.0, 0.2, 0.3], algorithm="B")
        verdict = compare(a, b)
        assert verdict.winner == a.label()
        assert verdict.margin > 0

    def test_common_horizon_used(self):
        a = make_trace([0.1, 0.2], algorithm="A")  # ends at t=1
        b = make_trace([0.0, 0.1, 0.9, 0.9], algorithm="B")  # shines later
        verdict = compare(a, b)
        # Within [0, 1] trace a leads.
        assert verdict.winner == a.label()
