"""Elastic serving: churned replay, the autoscaler, and result plumbing."""

import numpy as np
import pytest

from repro.elastic import ClusterMembership, MembershipEvent, MembershipTimeline
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.harness.report import render_membership
from repro.serve import (
    LoadSpec,
    ModelSnapshot,
    Predictor,
    ServingEngine,
    generate_arrivals,
)
from repro.serve.config import ServingConfig
from repro.serve.queue import TenantScheduler
from repro.sparse.mlp import MLPArchitecture, SparseMLP


@pytest.fixture(scope="module")
def predictor(micro_task):
    arch = MLPArchitecture(
        micro_task.n_features, micro_task.n_labels, hidden=(32,)
    )
    state = SparseMLP(arch).init_state(seed=21)
    snapshot = ModelSnapshot(arch=arch, state=state, meta={"dataset": "micro"})
    return Predictor(snapshot)


def serve_server(n_gpus=2, seed=0):
    return make_server(
        n_gpus, cost_params=GpuCostParams.tiny_model_profile(), seed=seed
    )


def arrivals_for(predictor, X, n_requests, *, seed=0, factor=10.0):
    work = predictor.workload(X[:1])
    per_request = serve_server().gpus[0].cost_model.inference_time(
        work, n_active_gpus=2
    )
    rate = factor * 2 / per_request
    spec = LoadSpec(n_requests=n_requests, rate_rps=rate, seed=seed)
    return generate_arrivals(spec)


def churned_serve(predictor, X, events, *, n_requests=150, mode="adaptive",
                  n_gpus=2, **options):
    arrivals = arrivals_for(predictor, X, n_requests)
    span = float(arrivals[-1])
    server = serve_server(n_gpus)
    timeline = MembershipTimeline([
        e if isinstance(e, MembershipEvent)
        else MembershipEvent(e[0] * span, *e[1:])
        for e in events
    ])
    membership = ClusterMembership(server, timeline)
    options.setdefault("membership_check_every_s", span / 256.0)
    engine = ServingEngine(predictor, server, mode=mode, **options)
    result = engine.serve(X, arrivals, k=5, membership=membership)
    return result, membership


class TestChurnedServing:
    def test_fail_mid_run_still_serves_everything(self, predictor, micro_task):
        X = micro_task.test.X
        result, membership = churned_serve(
            predictor, X, [(0.4, "fail", 1)]
        )
        assert all(r.t_done is not None for r in result.requests)
        assert membership.n_active == 1
        assert result.n_membership_events == 1
        assert result.final_devices == 1
        # the survivor absorbed the failed device's share
        assert result.per_device[0] > result.per_device.get(1, 0)

    def test_join_mid_run_takes_load(self, predictor, micro_task):
        X = micro_task.test.X
        result, membership = churned_serve(
            predictor, X, [(0.3, "join", 2)]
        )
        assert membership.n_active == 3
        assert result.final_devices == 3
        assert result.per_device.get(2, 0) > 0  # the joiner served requests
        assert all(r.t_done is not None for r in result.requests)

    def test_throttle_and_recover(self, predictor, micro_task):
        X = micro_task.test.X
        result, membership = churned_serve(
            predictor, X,
            [(0.3, "throttle", 0, 0.25), (0.7, "recover", 0)],
        )
        assert result.n_membership_events == 2
        assert membership.server.device(0).speed_scale == 1.0
        assert all(r.t_done is not None for r in result.requests)

    def test_membership_events_in_result_dict(self, predictor, micro_task):
        X = micro_task.test.X
        result, _ = churned_serve(predictor, X, [(0.4, "fail", 1)])
        out = result.as_dict()
        assert out["membership"]["n_events"] == 1
        assert out["membership"]["final_devices"] == 1
        (event,) = out["membership"]["events"]
        assert event["kind"] == "fail" and event["applied"]
        headline = result.headline_metrics()
        assert headline["n_membership_events"] == 1.0
        assert headline["final_devices"] == 1.0

    def test_static_run_has_no_membership_keys(self, predictor, micro_task):
        X = micro_task.test.X
        arrivals = arrivals_for(predictor, X, 60)
        engine = ServingEngine(predictor, serve_server(), mode="adaptive")
        result = engine.serve(X, arrivals, k=5)
        assert result.final_devices is None
        assert "membership" not in result.as_dict()
        assert "n_membership_events" not in result.headline_metrics()

    def test_membership_for_wrong_server_rejected(self, predictor, micro_task):
        X = micro_task.test.X
        arrivals = arrivals_for(predictor, X, 20)
        engine = ServingEngine(predictor, serve_server(), mode="adaptive")
        other = ClusterMembership(serve_server(), MembershipTimeline([]))
        with pytest.raises(ConfigurationError):
            engine.serve(X, arrivals, k=5, membership=other)


class TestAutoscaler:
    def test_burst_admits_then_quiet_retires(self, predictor, micro_task):
        X = micro_task.test.X
        burst = arrivals_for(predictor, X, 240, factor=40.0)
        quiet_gap = float(burst[-1])
        quiet = burst[-1] + np.linspace(
            quiet_gap * 0.5, quiet_gap * 6.0, 80
        )
        arrivals = np.concatenate([burst, quiet])
        server = serve_server(2)
        membership = ClusterMembership(server, MembershipTimeline([]))
        engine = ServingEngine(
            predictor, server, mode="adaptive", autoscale=True,
            autoscale_high_depth=16, autoscale_low_depth=2,
            membership_check_every_s=float(arrivals[-1]) / 512.0,
        )
        result = engine.serve(X, arrivals, k=5, membership=membership)
        assert result.n_autoscale_admits >= 1
        assert result.n_autoscale_retires >= 1
        assert membership.n_active == 2  # back to baseline after the burst
        assert all(r.t_done is not None for r in result.requests)

    def test_autoscale_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServingConfig.from_options(autoscale_high_depth=4,
                                       autoscale_low_depth=8)
        with pytest.raises(ConfigurationError):
            ServingConfig.from_options(membership_check_every_s=0.0)
        with pytest.raises(ConfigurationError):
            ServingConfig.from_options(autoscale_min_devices=0)


class TestSchedulerDeviceCount:
    def test_set_n_devices(self):
        sched = TenantScheduler(n_devices=2)
        sched.set_n_devices(4)
        assert sched._n_devices == 4
        with pytest.raises(ConfigurationError):
            sched.set_n_devices(0)


class TestReportRendering:
    def test_render_membership_lists_events(self):
        text = render_membership({
            "n_events": 2,
            "n_applied": 2,
            "n_suppressed": 0,
            "by_kind": {"fail": 1, "join": 1},
            "by_source": {"timeline": 2},
            "active_devices": {"initial": 4, "final": 4, "min": 3, "max": 4},
            "events": [
                {"t": 0.01, "kind": "fail", "device": 2, "source": "timeline",
                 "loss_before": 1.2, "loss_after": 1.4, "loss_delta": 0.2},
                {"t": 0.02, "kind": "join", "device": 4, "source": "timeline",
                 "requests_in_window": 12, "p99_in_window_s": 0.004,
                 "p99_steady_s": 0.002},
            ],
        })
        assert "fail" in text and "join" in text
        assert "device" in text.lower()
