"""Tests for repro.elastic.membership — the active-set state machine."""

import pytest

from repro.elastic import (
    ClusterMembership,
    MembershipEvent,
    MembershipTimeline,
    UpdateLedger,
)
from repro.exceptions import ConfigurationError, MembershipError
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams


def server(n=3, seed=0):
    return make_server(
        n, cost_params=GpuCostParams.tiny_model_profile(), seed=seed
    )


def membership(events, n=3, **kwargs):
    return ClusterMembership(
        server(n), MembershipTimeline(events), **kwargs
    )


class TestUpdateLedger:
    def test_offer_resolve_counts(self):
        ledger = UpdateLedger()
        t0 = ledger.offer(0, 5)
        t1 = ledger.offer(1, 3)
        ledger.resolve(t0, merged=True)
        ledger.resolve(t1, merged=False)
        assert ledger.n_merged == 1
        assert ledger.n_discarded == 1
        assert ledger.updates_merged == 5
        assert ledger.updates_discarded == 3
        ledger.assert_drained()

    def test_double_resolve_raises(self):
        ledger = UpdateLedger()
        token = ledger.offer(0, 1)
        ledger.resolve(token, merged=True)
        with pytest.raises(MembershipError):
            ledger.resolve(token, merged=True)

    def test_unresolved_offer_fails_drain(self):
        ledger = UpdateLedger()
        ledger.offer(0, 1)
        with pytest.raises(MembershipError):
            ledger.assert_drained()

    def test_negative_offer_rejected(self):
        with pytest.raises(MembershipError):
            UpdateLedger().offer(0, -1)


class TestActiveSet:
    def test_initial_active_set_is_every_installed_device(self):
        m = membership([], n=3)
        assert m.active_ids == (0, 1, 2)
        assert m.n_active == 3
        assert all(m.is_active(i) for i in range(3))

    def test_fail_removes_device(self):
        m = membership([MembershipEvent(1.0, "fail", 1)])
        m.poll(2.0)
        assert m.active_ids == (0, 2)
        failed, departed, joined = m.take_sync()
        assert failed == {1}
        assert departed == set()
        assert joined == []

    def test_leave_is_graceful(self):
        m = membership([MembershipEvent(1.0, "leave", 2)])
        m.poll(2.0)
        failed, departed, _ = m.take_sync()
        assert failed == set()
        assert departed == {2}

    def test_take_sync_clears(self):
        m = membership([MembershipEvent(1.0, "fail", 1)])
        m.poll(2.0)
        m.take_sync()
        assert m.take_sync() == (set(), set(), [])

    def test_throttle_and_recover_touch_speed_scale(self):
        m = membership([
            MembershipEvent(1.0, "throttle", 0, factor=0.25),
            MembershipEvent(2.0, "recover", 0),
        ])
        m.poll(1.5)
        assert m.server.device(0).speed_scale == 0.25
        assert m.is_active(0)  # throttled devices stay in the set
        m.poll(2.5)
        assert m.server.device(0).speed_scale == 1.0

    def test_min_active_suppresses_last_departure(self):
        m = membership([
            MembershipEvent(1.0, "fail", 0),
            MembershipEvent(1.0, "fail", 1),
            MembershipEvent(1.0, "fail", 2),
        ])
        applied = m.poll(2.0)
        assert m.n_active == 1
        assert [e.applied for e in applied] == [True, True, False]
        assert m.n_suppressed == 1

    def test_fail_of_unknown_device_suppressed(self):
        m = membership([MembershipEvent(1.0, "fail", 9)])
        (event,) = m.poll(2.0)
        assert not event.applied


class TestJoins:
    def test_join_provisions_a_new_device(self):
        m = membership([MembershipEvent(1.0, "join", 3)], n=3)
        (event,) = m.poll(2.0)
        assert event.applied
        assert m.server.n_gpus == 4
        assert m.active_ids == (0, 1, 2, 3)
        _, _, joined = m.take_sync()
        assert joined == [3]

    def test_join_keeps_ids_contiguous(self):
        m = membership([MembershipEvent(1.0, "join", 17)], n=2)
        (event,) = m.poll(2.0)
        assert event.device_id == 2
        assert "alias" in event.note

    def test_rejoin_reactivates_and_resets_throttle(self):
        m = membership([
            MembershipEvent(1.0, "throttle", 1, factor=0.5),
            MembershipEvent(2.0, "leave", 1),
            MembershipEvent(3.0, "join", 1),
        ])
        m.poll(2.5)
        assert not m.is_active(1)
        m.poll(3.5)
        assert m.is_active(1)
        assert m.server.device(1).speed_scale == 1.0
        assert m.server.n_gpus == 3  # no fresh provision for a rejoin

    def test_join_of_active_device_suppressed(self):
        m = membership([MembershipEvent(1.0, "join", 0)])
        (event,) = m.poll(2.0)
        assert not event.applied

    def test_joins_parked_until_admitting_poll(self):
        m = membership([MembershipEvent(1.0, "join", 3)], n=3)
        assert m.poll(2.0, admit_joins=False) == []
        assert m.events_pending() == 1
        assert m.next_event_t() == 0.0  # parked joins are already due
        (event,) = m.poll(2.0, admit_joins=True)
        assert event.kind == "join" and event.applied

    def test_rejoin_cancels_pending_departure_record(self):
        m = membership([
            MembershipEvent(1.0, "fail", 1),
            MembershipEvent(2.0, "join", 1),
        ])
        m.poll(3.0)
        failed, departed, joined = m.take_sync()
        assert failed == set()
        assert departed == set()
        assert joined == [1]


class TestAutoscalerHooks:
    def test_admit_prefers_inactive_installed_device(self):
        m = membership([MembershipEvent(1.0, "leave", 1)])
        m.poll(2.0)
        event = m.admit(3.0)
        assert event.device_id == 1
        assert m.server.n_gpus == 3

    def test_admit_provisions_when_all_active(self):
        m = membership([])
        event = m.admit(1.0)
        assert event.device_id == 3
        assert m.server.n_gpus == 4

    def test_retire(self):
        m = membership([])
        event = m.retire(1.0, 2)
        assert event.applied
        assert m.active_ids == (0, 1)
        assert event.source == "autoscaler"


class TestConstruction:
    def test_preset_name_needs_duration(self):
        with pytest.raises(ConfigurationError):
            ClusterMembership(server(), "spot-churn")

    def test_preset_name_resolves(self):
        m = ClusterMembership(server(), "spot-churn", duration_s=1.0)
        assert m.events_pending() >= 3

    def test_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            ClusterMembership(server(), 42)

    def test_rejects_min_active_below_one(self):
        with pytest.raises(ConfigurationError):
            ClusterMembership(server(), min_active=0)

    def test_summary_shape(self):
        m = membership([
            MembershipEvent(1.0, "fail", 0),
            MembershipEvent(2.0, "join", 3),
        ])
        m.poll(3.0)
        summary = m.summary()
        assert summary["n_events"] == 2
        assert summary["n_applied"] == 2
        assert summary["by_kind"] == {"fail": 1, "join": 1}
        assert summary["final_devices"] == 3
