"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_dataset_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--dataset", "not-a-dataset"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "micro" in out and "amazon670k-bench" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Amazon-670k" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "gap" in out

    def test_allreduce(self, capsys):
        assert main(["allreduce"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out and "tree" in out

    def test_fig6_small(self, capsys):
        assert main([
            "fig6", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out and "Figure 6b" in out

    def test_train_and_save(self, capsys, tmp_path):
        stem = tmp_path / "run"
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--save", str(stem),
        ]) == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert stem.with_suffix(".json").exists()
        assert stem.with_suffix(".npz").exists()

        from repro.harness.store import load_trace

        trace = load_trace(stem)
        assert trace.algorithm == "Adaptive SGD"

    def test_fig4_micro(self, capsys):
        assert main([
            "fig4", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "time-to-accuracy summary" in out

    def test_trace_exports_timeline(self, capsys, tmp_path):
        import json

        stem = tmp_path / "t"
        assert main([
            "trace", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--algorithms", "adaptive", "minibatch",
            "--out", str(stem),
        ]) == 0
        out = capsys.readouterr().out
        assert "Telemetry summary" in out and "perfetto" in out.lower()
        trace_path = tmp_path / "t.trace.json"
        jsonl_path = tmp_path / "t.telemetry.jsonl"
        assert trace_path.exists() and jsonl_path.exists()
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} <= {"X", "i", "C", "M"}
        assert len(trace["otherData"]["runs"]) == 2  # one process per run
        for line in jsonl_path.read_text().splitlines():
            json.loads(line)


class TestTimeBudgetFlag:
    def test_canonical_flag_does_not_warn(self):
        import warnings

        parser = build_parser()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            args = parser.parse_args(
                ["train", "--time-budget-s", "0.1", "--dataset", "micro"]
            )
        assert args.time_budget_s == 0.1

    def test_deprecated_budget_alias_warns(self):
        parser = build_parser()
        with pytest.warns(DeprecationWarning, match="--time-budget-s"):
            args = parser.parse_args(
                ["train", "--budget", "0.1", "--dataset", "micro"]
            )
        assert args.time_budget_s == 0.1
