"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_dataset_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--dataset", "not-a-dataset"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "micro" in out and "amazon670k-bench" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Amazon-670k" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "gap" in out

    def test_allreduce(self, capsys):
        assert main(["allreduce"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out and "tree" in out

    def test_fig6_small(self, capsys):
        assert main([
            "fig6", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out and "Figure 6b" in out

    def test_train_and_save(self, capsys, tmp_path):
        stem = tmp_path / "run"
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--save", str(stem),
        ]) == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert stem.with_suffix(".json").exists()
        assert stem.with_suffix(".npz").exists()

        from repro.harness.store import load_trace

        trace = load_trace(stem)
        assert trace.algorithm == "Adaptive SGD"

    def test_fig4_micro(self, capsys):
        assert main([
            "fig4", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "time-to-accuracy summary" in out

    def test_trace_exports_timeline(self, capsys, tmp_path):
        import json

        stem = tmp_path / "t"
        assert main([
            "trace", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--algorithms", "adaptive", "minibatch",
            "--out", str(stem),
        ]) == 0
        out = capsys.readouterr().out
        assert "Telemetry summary" in out and "perfetto" in out.lower()
        trace_path = tmp_path / "t.trace.json"
        jsonl_path = tmp_path / "t.telemetry.jsonl"
        assert trace_path.exists() and jsonl_path.exists()
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} <= {"X", "i", "C", "M"}
        assert len(trace["otherData"]["runs"]) == 2  # one process per run
        for line in jsonl_path.read_text().splitlines():
            json.loads(line)

    def test_trace_summary_flag_skips_files(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "trace", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--algorithms", "adaptive", "--summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "Telemetry summary" in out
        assert "Time attribution" in out
        assert "Device utilization" in out
        assert "Straggler analysis" in out
        assert list(tmp_path.iterdir()) == []  # --summary writes nothing


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """One archived two-run trace shared by the analyze/compare tests."""
    tmp = tmp_path_factory.mktemp("traces")
    stem = tmp / "t"
    assert main([
        "trace", "--dataset", "micro", "--time-budget-s", "0.02",
        "--gpus", "2", "--algorithms", "adaptive", "minibatch",
        "--out", str(stem),
    ]) == 0
    return tmp / "t.telemetry.jsonl", tmp / "t.trace.json"


class TestAnalyzeCommand:
    def test_analyze_table(self, capsys, traced):
        jsonl_path, _ = traced
        capsys.readouterr()
        assert main(["analyze", str(jsonl_path)]) == 0
        out = capsys.readouterr().out
        assert "Time attribution" in out
        assert "Device utilization" in out
        assert "Straggler analysis" in out
        assert "Findings" in out

    def test_analyze_json(self, capsys, traced):
        import json

        jsonl_path, _ = traced
        capsys.readouterr()
        assert main(["analyze", str(jsonl_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["runs"]) == 2
        for run in report["runs"]:
            assert run["attribution"]["max_residual"] <= 1e-6

    def test_analyze_chrome_input(self, capsys, traced):
        _, chrome_path = traced
        capsys.readouterr()
        assert main(["analyze", str(chrome_path)]) == 0
        assert "Time attribution" in capsys.readouterr().out

    def test_analyze_run_selector(self, capsys, traced):
        import json

        jsonl_path, _ = traced
        capsys.readouterr()
        assert main(["analyze", str(jsonl_path), "--run", "1", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["runs"]) == 1

    def test_analyze_promtext_output(self, capsys, traced, tmp_path):
        jsonl_path, _ = traced
        prom = tmp_path / "metrics.prom"
        assert main([
            "analyze", str(jsonl_path), "--promtext", str(prom),
        ]) == 0
        assert prom.exists()
        assert "repro_run_span_seconds" in prom.read_text()

    def test_analyze_missing_file_fails(self, capsys, tmp_path):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_analyze_corrupt_jsonl_fails(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "run", "run": 0}\nnot json\n')
        assert main(["analyze", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "bad.jsonl:2" in err


class TestCompareCommand:
    def test_compare_table(self, capsys, traced):
        jsonl_path, _ = traced
        capsys.readouterr()
        assert main([
            "compare", str(jsonl_path), str(jsonl_path),
            "--run-a", "0", "--run-b", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "candidate" in out
        assert "Per-phase simulated time" in out
        assert "time-to-accuracy" in out

    def test_compare_json_reports_tta_delta(self, capsys, traced):
        import json

        jsonl_path, _ = traced
        capsys.readouterr()
        assert main([
            "compare", str(jsonl_path), str(jsonl_path),
            "--run-a", "0", "--run-b", "1", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["baseline"] != report["candidate"]
        assert report["phases"]
        # Adaptive vs one of the baselines must yield a measurable
        # time-to-accuracy difference (the acceptance criterion).
        assert report["tta_delta_s"] is not None
        assert report["tta_delta_s"] != 0.0

    def test_compare_same_run_is_neutral(self, capsys, traced):
        import json

        jsonl_path, _ = traced
        capsys.readouterr()
        assert main([
            "compare", str(jsonl_path), str(jsonl_path), "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["wall_speedup"] == pytest.approx(1.0)
        assert report["regressions"] == []

    def test_compare_missing_file_fails(self, capsys, traced, tmp_path):
        jsonl_path, _ = traced
        assert main([
            "compare", str(jsonl_path), str(tmp_path / "nope.jsonl"),
        ]) == 1
        assert "error" in capsys.readouterr().err


class TestTimeBudgetFlag:
    def test_canonical_flag_does_not_warn(self):
        import warnings

        parser = build_parser()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            args = parser.parse_args(
                ["train", "--time-budget-s", "0.1", "--dataset", "micro"]
            )
        assert args.time_budget_s == 0.1

    def test_deprecated_budget_alias_warns(self):
        parser = build_parser()
        with pytest.warns(DeprecationWarning, match="--time-budget-s"):
            args = parser.parse_args(
                ["train", "--budget", "0.1", "--dataset", "micro"]
            )
        assert args.time_budget_s == 0.1


class TestServingCommands:
    def test_snapshot_command(self, capsys, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert (tmp_path / "model.snapshot.json").exists()
        assert (tmp_path / "model.snapshot.npz").exists()

    def test_train_snapshot_then_serve_same_session(self, capsys, tmp_path):
        """The acceptance loop: a `repro train --snapshot` model must be
        servable by `repro serve` in the same CLI session."""
        stem = tmp_path / "loop"
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--snapshot", str(stem),
        ]) == 0
        assert "snapshot:" in capsys.readouterr().out
        assert main([
            "serve", str(stem), "--requests", "150", "--mode", "both",
        ]) == 0
        out = capsys.readouterr().out
        assert "-- sequential --" in out and "-- adaptive --" in out
        assert "p99 latency (ms)" in out
        assert "adaptive/sequential throughput" in out

    def test_serve_single_mode_with_lsh(self, capsys, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(stem), "--requests", "100", "--mode", "adaptive",
            "--scoring", "lsh",
        ]) == 0
        out = capsys.readouterr().out
        assert "-- adaptive --" in out and "-- sequential --" not in out
        assert "LSH recall@5 vs exact:" in out

    def test_serve_deprecated_lsh_flag_still_works(self, capsys, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(stem), "--requests", "100", "--mode", "adaptive",
            "--lsh",
        ]) == 0
        captured = capsys.readouterr()
        assert "LSH recall@5 vs exact:" in captured.out
        assert "deprecated" in captured.err

    def test_serve_auto_mode_reports_scoring_split(self, capsys, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(stem), "--requests", "100", "--mode", "auto",
        ]) == 0
        out = capsys.readouterr().out
        # `--mode auto` is sugar for adaptive batching + auto scoring.
        assert "-- adaptive --" in out and "-- sequential --" not in out
        assert "scoring split (batches)" in out
        # micro's label space is tiny: the crossover must route to exact.
        assert "exact=" in out
        assert "LSH recall@5 vs exact:" in out

    def test_serve_exports_analyzable_telemetry(self, capsys, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        capsys.readouterr()
        out_stem = tmp_path / "srv"
        assert main([
            "serve", str(stem), "--requests", "100", "--out", str(out_stem),
        ]) == 0
        capsys.readouterr()
        jsonl = tmp_path / "srv.telemetry.jsonl"
        assert jsonl.exists()
        assert main(["analyze", str(jsonl), "--json"]) == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert len(report["runs"]) == 2  # sequential + adaptive
        for run in report["runs"]:
            assert run["attribution"]["max_residual"] <= 1e-6

    def test_serve_missing_snapshot_fails(self, capsys, tmp_path):
        assert main(["serve", str(tmp_path / "ghost")]) == 1
        assert "error" in capsys.readouterr().err

    def test_train_publishes_into_store(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.03",
            "--gpus", "2", "--store", str(store_dir),
            "--publish-every-s", "0.008",
        ]) == 0
        out = capsys.readouterr().out
        assert "store:" in out and "v1" in out and "v2" in out
        from repro.serve import SnapshotStore

        store = SnapshotStore(store_dir, create=False)
        assert len(store.versions()) >= 2
        assert store.entries[0].published_s == 0.0
        assert store.entries[-1].published_s > 0.0

    def test_train_store_without_schedule_publishes_once(self, capsys,
                                                         tmp_path):
        store_dir = tmp_path / "store"
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--store", str(store_dir),
        ]) == 0
        assert "store:" in capsys.readouterr().out
        from repro.serve import SnapshotStore

        assert SnapshotStore(store_dir, create=False).versions() == [1]

    def test_publish_schedule_requires_store(self, capsys):
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.02",
            "--publish-every-s", "0.01",
        ]) == 1
        assert "--store" in capsys.readouterr().err

    def test_serve_from_store_hot_swaps(self, capsys, tmp_path):
        """The continuous-learning loop: train publishes a version
        schedule, serve replays it and reports the swap accounting."""
        store_dir = tmp_path / "store"
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.03",
            "--gpus", "2", "--store", str(store_dir),
            "--publish-every-s", "0.008",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(store_dir), "--requests", "200",
            "--mode", "adaptive",
        ]) == 0
        out = capsys.readouterr().out
        import re

        m = re.search(r"hot swaps\s*:\s*(\d+) committed, (\d+) rolled back, "
                      r"(\d+) failed", out)
        assert m, out
        assert int(m.group(1)) >= 1  # at least one version landed mid-serve
        assert "versions served" in out
        assert re.search(r"mis-versioned\s*:\s*0", out), out

    def test_serve_empty_store_fails(self, capsys, tmp_path):
        from repro.serve import SnapshotStore

        SnapshotStore(tmp_path / "empty")
        assert main(["serve", str(tmp_path / "empty")]) == 1
        assert "empty" in capsys.readouterr().err

    def test_serve_max_queue_depth_reports_shed(self, capsys, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(stem), "--requests", "150", "--mode", "sequential",
            "--max-queue-depth", "4",
        ]) == 0
        assert "shed requests" in capsys.readouterr().out

    def test_serve_dataset_feature_mismatch_fails(self, capsys, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(stem), "--dataset", "amazon670k-tiny",
            "--requests", "10",
        ]) == 1
        assert "features" in capsys.readouterr().err
