"""Elastic training: membership-aware Adaptive SGD end to end.

Covers the rescale math, the no-churn equivalence guarantee, the ledger
accounting surfaced through ``trace.metadata``, and the fail-and-rejoin
acceptance path with telemetry attribution.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.core.scaling import rescale_for_membership
from repro.elastic import ClusterMembership, MembershipEvent, MembershipTimeline
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.telemetry import Telemetry, TraceData
from repro.telemetry.analyze import headline_metrics, membership_events
from repro.telemetry.events import EVENT_MEMBERSHIP

BUDGET = 0.04


def fresh_server(n=4, seed=5):
    return make_server(
        n, seed=seed, cost_params=GpuCostParams.tiny_model_profile()
    )


def run_elastic(micro_task, events, *, budget=BUDGET, telemetry=None,
                server=None, **cfg_kwargs):
    server = server or fresh_server()
    membership = None
    if events is not None:
        timeline = (events if isinstance(events, MembershipTimeline)
                    else MembershipTimeline(events))
        membership = ClusterMembership(server, timeline, telemetry=telemetry)
    defaults = dict(b_max=64, base_lr=0.2, mega_batch_batches=16)
    defaults.update(cfg_kwargs)
    cfg = AdaptiveSGDConfig(**defaults)
    trainer = AdaptiveSGDTrainer(
        micro_task, server, cfg, hidden=(32,), init_seed=7, data_seed=3,
        eval_samples=128, telemetry=telemetry, membership=membership,
    )
    return trainer.run(time_budget_s=budget), membership


class TestRescaleForMembership:
    def test_departure_grows_survivor_batches(self):
        out = rescale_for_membership(
            [32, 32, 32], [0.1, 0.1, 0.1], n_before=4, b_min=8, b_max=64
        )
        assert out.batch_sizes == (43, 43, 43)
        assert out.changed
        # linear LR scaling follows the realized integer ratio
        for b_new, lr_new in zip(out.batch_sizes, out.learning_rates):
            assert lr_new == pytest.approx(0.1 * b_new / 32)

    def test_join_shrinks_survivors_and_ramps_joiner(self):
        out = rescale_for_membership(
            [64, 64], [0.2, 0.2], n_before=2, n_joining=1, b_min=8, b_max=64
        )
        assert all(b < 64 for b in out.batch_sizes)
        mean_b = sum(out.batch_sizes) / 2
        assert out.join_batch_size == pytest.approx(mean_b * 0.5, abs=1)
        assert 8 <= out.join_batch_size <= 64
        assert out.join_learning_rate > 0

    def test_no_change_is_identity(self):
        out = rescale_for_membership(
            [32, 48], [0.1, 0.15], n_before=2, b_min=8, b_max=64
        )
        assert out.batch_sizes == (32, 48)
        assert out.learning_rates == (0.1, 0.15)
        assert not out.changed

    def test_clamps_to_bounds(self):
        out = rescale_for_membership(
            [60], [0.1], n_before=4, b_min=8, b_max=64
        )
        assert out.batch_sizes == (64,)  # 60 * 4 clamped down

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rescale_for_membership([], [], n_before=2, b_min=8, b_max=64)
        with pytest.raises(ConfigurationError):
            rescale_for_membership([32], [0.1, 0.2], n_before=2,
                                   b_min=8, b_max=64)
        with pytest.raises(ConfigurationError):
            rescale_for_membership([32], [0.1], n_before=0, b_min=8, b_max=64)
        with pytest.raises(ConfigurationError):
            rescale_for_membership([32], [0.1], n_before=2, n_joining=-1,
                                   b_min=8, b_max=64)


class TestStaticEquivalence:
    def test_empty_timeline_matches_no_membership(self, micro_task):
        baseline, _ = run_elastic(micro_task, None)
        elastic, membership = run_elastic(micro_task, [])
        assert membership.n_events == 0
        assert len(baseline) == len(elastic)
        for a, b in zip(baseline.points, elastic.points):
            assert a.time_s == b.time_s
            assert a.loss == b.loss or (
                np.isnan(a.loss) and np.isnan(b.loss)
            )
            assert a.accuracy == b.accuracy

    def test_membership_bound_to_other_server_rejected(self, micro_task):
        other = fresh_server()
        membership = ClusterMembership(other, MembershipTimeline([]))
        with pytest.raises(ConfigurationError):
            AdaptiveSGDTrainer(
                micro_task, fresh_server(),
                AdaptiveSGDConfig(b_max=64, mega_batch_batches=16),
                membership=membership,
            )

    def test_membership_type_checked(self, micro_task):
        with pytest.raises(ConfigurationError):
            AdaptiveSGDTrainer(
                micro_task, fresh_server(),
                AdaptiveSGDConfig(b_max=64, mega_batch_batches=16),
                membership="spot-churn",
            )


class TestChurnedTraining:
    def test_fail_discards_exactly_and_run_completes(self, micro_task):
        trace, membership = run_elastic(
            micro_task, [MembershipEvent(0.012, "fail", 1)]
        )
        summary = trace.metadata["membership"]
        assert summary["n_applied"] == 1
        assert summary["by_kind"] == {"fail": 1}
        assert summary["final_devices"] == 3
        assert summary["updates_merged"] > 0
        # the failed replica's in-flight contribution is discarded, once
        assert summary["updates_discarded"] > 0
        assert trace.best_accuracy > trace.points[0].accuracy

    def test_join_provisions_and_participates(self, micro_task):
        trace, membership = run_elastic(
            micro_task, [MembershipEvent(0.012, "join", 4)]
        )
        assert membership.n_active == 5
        assert membership.server.n_gpus == 5
        assert trace.metadata["membership"]["by_kind"] == {"join": 1}

    def test_throttle_recover_runs_clean(self, micro_task):
        trace, membership = run_elastic(
            micro_task,
            [MembershipEvent(0.008, "throttle", 0, factor=0.3),
             MembershipEvent(0.024, "recover", 0)],
        )
        assert trace.metadata["membership"]["n_applied"] == 2
        assert membership.server.device(0).speed_scale == 1.0

    def test_spot_churn_preset_stays_in_learning_range(self, micro_task):
        static, _ = run_elastic(micro_task, None, budget=0.05)
        server = fresh_server()
        timeline = ClusterMembership(
            server, "spot-churn", duration_s=0.05, seed=3
        ).timeline
        churned, membership = run_elastic(
            micro_task, timeline, budget=0.05, server=server
        )
        assert membership.n_events >= 3
        # churn costs accuracy but must not destroy the run (bench gates
        # the tight factor; this is the smoke-level sanity floor)
        assert churned.best_accuracy > static.points[0].accuracy + 0.1


class TestFailAndRejoinAcceptance:
    """The PR's end-to-end story: a replica fails mid-training, a
    replacement joins, the run completes, and analyze pins the blip."""

    @pytest.fixture(scope="class")
    def accepted(self, micro_task):
        tel = Telemetry(label="elastic-acceptance")
        trace, membership = run_elastic(
            micro_task,
            [MembershipEvent(0.012, "fail", 2),
             MembershipEvent(0.024, "join", 4)],
            telemetry=tel,
        )
        return trace, membership, tel

    def test_run_completes_with_both_events(self, accepted):
        trace, membership, _ = accepted
        summary = trace.metadata["membership"]
        assert summary["by_kind"] == {"fail": 1, "join": 1}
        assert summary["n_applied"] == 2
        assert membership.n_active == 4  # lost one, gained one
        assert trace.best_accuracy > trace.points[0].accuracy

    def test_ledger_accounts_every_update(self, accepted):
        trace, _, _ = accepted
        summary = trace.metadata["membership"]
        assert summary["updates_merged"] > 0
        assert summary["updates_discarded"] >= 0
        # exactly-once: every offered update ended merged or discarded;
        # run() would have raised MembershipError otherwise.

    def test_telemetry_emits_membership_instants(self, accepted):
        _, _, tel = accepted
        run = TraceData.from_telemetry(tel).run(0)
        instants = [i for i in run.instants if i.name == EVENT_MEMBERSHIP]
        assert len(instants) == 2
        kinds = {i.args["kind"] for i in instants}
        assert kinds == {"fail", "join"}

    def test_analyze_attributes_the_blip(self, accepted):
        _, _, tel = accepted
        run = TraceData.from_telemetry(tel).run(0)
        section = membership_events(run)
        assert section is not None
        assert section["n_events"] == 2
        assert section["active_devices"]["initial"] == 4
        assert section["active_devices"]["min"] == 3
        assert section["active_devices"]["final"] == 4
        events = section["events"]
        assert [e["kind"] for e in events] == ["fail", "join"]
        fail = events[0]
        assert fail["loss_before"] is not None
        assert fail["loss_after"] is not None
        assert fail["loss_delta"] == pytest.approx(
            fail["loss_after"] - fail["loss_before"]
        )

    def test_headline_metrics_carry_membership(self, accepted):
        _, _, tel = accepted
        run = TraceData.from_telemetry(tel).run(0)
        out = headline_metrics(run)
        assert out["n_membership_events"] == 2
        assert out["final_devices"] == 4
