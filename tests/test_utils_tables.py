"""Tests for repro.utils.tables — text table/series rendering."""

import pytest

from repro.utils.tables import (
    format_kv,
    format_series,
    format_table,
    format_timeline,
)


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        # All rows have equal width.
        assert len({len(line) for line in lines}) == 1

    def test_title_line(self):
        out = format_table(["h"], [[1]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456789]], floatfmt=".2f")
        assert "0.12" in out

    def test_bool_rendering(self):
        out = format_table(["flag"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_basic_series(self):
        out = format_series({"curve": [(0, 0.1), (1, 0.2)]}, xlabel="t", ylabel="acc")
        assert "curve" in out
        assert "(0, 0.1)" in out and "(1, 0.2)" in out

    def test_decimation_keeps_endpoints(self):
        pts = [(i, i * 0.1) for i in range(100)]
        out = format_series({"c": pts}, max_points=5)
        assert "(0, 0)" in out
        assert "(99," in out
        # exactly 5 points rendered
        assert out.count("(") == 5

    def test_no_decimation_below_limit(self):
        pts = [(0, 1), (1, 2)]
        out = format_series({"c": pts}, max_points=10)
        assert out.count("(") == 2

    def test_multiple_series(self):
        out = format_series({"a": [(0, 1)], "b": [(0, 2)]})
        assert "a" in out and "b" in out


class TestFormatTimeline:
    def test_lane_rows_and_axis(self):
        out = format_timeline(
            {"gpu0": [(0.0, 5.0, "#")], "gpu1": [(5.0, 10.0, "#")]},
            start=0.0, end=10.0, width=10,
        )
        lines = out.splitlines()
        assert lines[0] == "gpu0 |#####.....|"
        assert lines[1] == "gpu1 |.....#####|"
        assert lines[2].strip().startswith("0s")
        assert lines[2].strip().endswith("10s")

    def test_later_intervals_overwrite(self):
        out = format_timeline(
            {"driver": [(0.0, 10.0, "M"), (2.0, 4.0, "A")]},
            start=0.0, end=10.0, width=10,
        )
        assert "MMAAMMMMMM" in out

    def test_zero_width_interval_leaves_a_mark(self):
        out = format_timeline(
            {"lane": [(5.0, 5.0, "x")]}, start=0.0, end=10.0, width=10,
        )
        assert "x" in out

    def test_zero_span_axis(self):
        out = format_timeline(
            {"lane": [(0.0, 0.0, "#")]}, start=0.0, end=0.0, width=8,
        )
        assert "########" in out

    def test_out_of_range_intervals_clamped(self):
        out = format_timeline(
            {"lane": [(-5.0, 20.0, "#")]}, start=0.0, end=10.0, width=10,
        )
        assert "##########" in out

    def test_title_and_legend(self):
        out = format_timeline(
            {"gpu0": [(0.0, 1.0, "#")]}, start=0.0, end=1.0, width=8,
            title="Utilization", legend={"#": "compute"},
        )
        lines = out.splitlines()
        assert lines[0] == "Utilization"
        assert lines[-1] == "#=compute   .=idle"

    def test_custom_fill(self):
        out = format_timeline(
            {"lane": []}, start=0.0, end=1.0, width=8, fill=" ",
        )
        assert "|        |" in out

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            format_timeline({}, start=0.0, end=1.0, width=4)

    def test_multichar_fill_rejected(self):
        with pytest.raises(ValueError):
            format_timeline({}, start=0.0, end=1.0, fill="..")

    def test_empty_lanes_render_axis_only(self):
        out = format_timeline({}, start=0.0, end=1.0, width=8)
        assert out.splitlines()


class TestFormatKv:
    def test_alignment(self):
        out = format_kv({"a": 1, "long-key": 2.5})
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv({}) == ""
