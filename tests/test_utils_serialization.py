"""Tests for repro.utils.serialization."""

import dataclasses

import numpy as np
import pytest

from repro.utils.serialization import (
    load_arrays,
    load_json,
    save_arrays,
    save_json,
    to_jsonable,
)


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray


class TestToJsonable:
    def test_passthrough_builtins(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_numpy_scalars(self):
        assert to_jsonable(np.int32(4)) == 4
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_arrays(self):
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_dataclass(self):
        out = to_jsonable(_Sample(name="x", values=np.ones(2)))
        assert out == {"name": "x", "values": [1.0, 1.0]}

    def test_nested_containers(self):
        out = to_jsonable({"k": (1, {2, 3})})
        assert out["k"][0] == 1
        assert sorted(out["k"][1]) == [2, 3]

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        path = save_json(tmp_path / "out.json", {"a": np.float32(1.5)})
        assert load_json(path) == {"a": 1.5}

    def test_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "deep" / "dir" / "f.json", [1, 2])
        assert path.exists()


class TestArraysRoundTrip:
    def test_round_trip(self, tmp_path):
        arrays = {"x": np.arange(5, dtype=np.float32), "y": np.eye(3)}
        path = save_arrays(tmp_path / "arrs.npz", arrays)
        back = load_arrays(path)
        assert set(back) == {"x", "y"}
        assert np.array_equal(back["x"], arrays["x"])
        assert np.array_equal(back["y"], arrays["y"])


class TestPathHandling:
    def test_path_becomes_string(self, tmp_path):
        import pathlib

        p = tmp_path / "model.snapshot.npz"
        assert to_jsonable(p) == str(p)
        assert to_jsonable(pathlib.PurePosixPath("a/b")) == "a/b"

    def test_path_inside_containers(self, tmp_path):
        out = to_jsonable({"arrays": tmp_path, "k": [tmp_path]})
        assert out == {"arrays": str(tmp_path), "k": [str(tmp_path)]}

    def test_save_json_with_path_values(self, tmp_path):
        path = save_json(tmp_path / "hdr.json", {"npz": tmp_path / "m.npz"})
        assert load_json(path) == {"npz": str(tmp_path / "m.npz")}


class TestNonFiniteRejection:
    @pytest.mark.parametrize("bad", [
        float("nan"), float("inf"), float("-inf"),
        np.float32("nan"), np.float64("inf"),
    ])
    def test_non_finite_floats_rejected(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            to_jsonable(bad)

    def test_non_finite_inside_array_rejected(self):
        with pytest.raises(ValueError):
            to_jsonable(np.array([1.0, np.nan]))

    def test_non_finite_nested_rejected(self):
        with pytest.raises(ValueError):
            to_jsonable({"metrics": {"loss": float("inf")}})

    def test_save_json_refuses_nan(self, tmp_path):
        with pytest.raises(ValueError):
            save_json(tmp_path / "bad.json", {"x": float("nan")})

    def test_finite_floats_still_pass(self):
        assert to_jsonable(np.float32(2.5)) == 2.5
        assert to_jsonable([0.0, -1e300]) == [0.0, -1e300]
