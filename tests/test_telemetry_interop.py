"""Interop acceptance tests: live recorder vs archived streams, and the
throttled-GPU straggler demo.

The headline guarantee: analyzing a run through the harness store's archived
JSONL yields *byte-identical* JSON to analyzing the live recorder — the
analysis is a pure function of the shared record stream.
"""

import json

import pytest

from repro.api import make_trainer
from repro.gpu.cluster import make_server
from repro.gpu.cost import CpuCostParams, GpuCostParams
from repro.gpu.profiles import ThrottledProfile
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.store import save_trace
from repro.telemetry import Telemetry, analyze_report, load_trace_data

BUDGET_S = 0.03


@pytest.fixture(scope="module")
def recorded():
    """One tiny heterogeneous adaptive run in a live recorder."""
    tel = Telemetry(label="interop")
    spec = ExperimentSpec(
        dataset="micro", algorithms=("adaptive",), gpu_counts=(2,),
        time_budget_s=BUDGET_S, eval_samples=64,
    )
    traces = run_experiment(spec, telemetry=tel)
    return tel, traces


class TestLiveVsArchived:
    def test_store_archive_analysis_is_byte_identical(self, recorded,
                                                      tmp_path):
        tel, traces = recorded
        (trace,) = traces.values()
        save_trace(trace, tmp_path / "run", telemetry=tel)
        archived = tmp_path / "run.telemetry.jsonl"
        assert archived.exists()

        live_json = json.dumps(analyze_report(tel), sort_keys=True,
                               allow_nan=False)
        stored_json = json.dumps(analyze_report(archived), sort_keys=True,
                                 allow_nan=False)
        assert live_json == stored_json

    def test_chrome_archive_agrees_on_the_verdicts(self, recorded, tmp_path):
        tel, traces = recorded
        (trace,) = traces.values()
        save_trace(trace, tmp_path / "run", telemetry=tel)
        chrome = analyze_report(tmp_path / "run.trace.json")
        live = analyze_report(tel)
        # Microsecond round-tripping loses float exactness, not meaning:
        # same devices, same straggler verdict, same finding detectors.
        for run_chrome, run_live in zip(chrome["runs"], live["runs"]):
            assert run_chrome["straggler"]["straggler"] \
                == run_live["straggler"]["straggler"]
            assert [f["detector"] for f in run_chrome["findings"]] \
                == [f["detector"] for f in run_live["findings"]]
            att_c = run_chrome["attribution"]
            att_l = run_live["attribution"]
            assert att_c["run_span_s"] == pytest.approx(
                att_l["run_span_s"], rel=1e-6
            )

    def test_attribution_invariant_on_real_run(self, recorded):
        tel, _ = recorded
        report = analyze_report(tel)
        for run in report["runs"]:
            assert run["attribution"]["max_residual"] <= 1e-6

    def test_load_trace_data_accepts_result_directory(self, recorded,
                                                      tmp_path):
        tel, _ = recorded
        from repro.telemetry.export import write_jsonl

        outdir = tmp_path / "results"
        write_jsonl(tel, outdir / "telemetry.jsonl")
        data = load_trace_data(outdir)
        assert len(data.runs) == 1


class TestThrottledStraggler:
    def test_throttled_device_flagged_as_straggler(self):
        """An intentionally throttled GPU must come out of the analysis
        named as the straggler (the EXPERIMENTS.md walkthrough)."""
        server = make_server(
            2, heterogeneity="uniform",
            cost_params=GpuCostParams.tiny_model_profile(),
            cpu_params=CpuCostParams.tiny_model_profile(),
        )
        victim = server.gpus[1]
        victim.profile = ThrottledProfile(
            base_profile=victim.profile, events=[(0.0, 0.4)],
        )
        tel = Telemetry(label="throttled")
        spec = ExperimentSpec(
            dataset="micro", algorithms=("adaptive",), gpu_counts=(2,),
            time_budget_s=BUDGET_S, eval_samples=64,
        )
        trainer = make_trainer(
            "adaptive", spec, server=server, telemetry=tel,
        )
        trainer.run(time_budget_s=BUDGET_S)

        report = analyze_report(tel)
        (run,) = report["runs"]
        straggler = run["straggler"]
        assert straggler["straggler"] == 1
        assert straggler["heterogeneity_index"] > 0.5  # 0.4x speed ≈ 1.5x slower
        assert any(f["detector"] == "straggler" for f in run["findings"])
