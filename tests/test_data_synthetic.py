"""Tests for repro.data.synthetic — generator statistics and learnability."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticXMLConfig,
    generate_xml_task,
    zipf_probabilities,
)
from repro.exceptions import ConfigurationError


class TestZipf:
    def test_normalized(self):
        p = zipf_probabilities(100, 1.1)
        assert p.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        p = zipf_probabilities(50, 1.0)
        assert np.all(np.diff(p) < 0)

    def test_zero_exponent_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_probabilities(0, 1.0)


def small_cfg(**overrides):
    base = dict(
        n_features=512, n_labels=128, n_train=1024, n_test=256,
        avg_features_per_sample=16.0, avg_labels_per_sample=2.5,
        name="t", seed=3,
    )
    base.update(overrides)
    return SyntheticXMLConfig(**base)


class TestGenerateTask:
    def test_shapes_match_config(self):
        task = generate_xml_task(small_cfg())
        assert task.train.n_samples == 1024
        assert task.test.n_samples == 256
        assert task.n_features == 512
        assert task.n_labels == 128

    def test_deterministic(self):
        a = generate_xml_task(small_cfg())
        b = generate_xml_task(small_cfg())
        assert (a.train.X != b.train.X).nnz == 0
        assert (a.train.Y != b.train.Y).nnz == 0

    def test_seed_changes_data(self):
        a = generate_xml_task(small_cfg(seed=1))
        b = generate_xml_task(small_cfg(seed=2))
        assert (a.train.X != b.train.X).nnz > 0

    def test_mean_feature_count_near_target(self):
        # Duplicate draws collapse, so the realized mean can sit below the
        # target; it must stay within a factor-2 band and above 1.
        task = generate_xml_task(small_cfg())
        avg = task.train.avg_features_per_sample
        assert 16.0 / 2 <= avg <= 16.0 * 1.3

    def test_mean_label_count_near_target(self):
        task = generate_xml_task(small_cfg())
        avg = task.train.avg_labels_per_sample
        assert 2.5 / 2 <= avg <= 2.5 * 1.3

    def test_rows_l2_normalized(self):
        task = generate_xml_task(small_cfg())
        X = task.train.X
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
        assert np.allclose(norms[norms > 0], 1.0, atol=1e-5)

    def test_nnz_varies_across_samples(self):
        # The second heterogeneity source: per-sample nnz must spread.
        task = generate_xml_task(small_cfg())
        counts = task.train.features_per_sample()
        assert counts.std() > 0.15 * counts.mean()

    def test_label_popularity_skewed(self):
        task = generate_xml_task(small_cfg(n_train=4096))
        freq = np.asarray(task.train.Y.sum(axis=0)).ravel()
        freq.sort()
        top = freq[-len(freq) // 10:].sum()
        assert top > 0.2 * freq.sum()  # top-10% labels dominate

    def test_values_positive(self):
        task = generate_xml_task(small_cfg())
        assert (task.train.X.data > 0).all()

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            small_cfg(avg_features_per_sample=0)
        with pytest.raises(ConfigurationError):
            small_cfg(signal_fraction=1.5)
        with pytest.raises(ConfigurationError):
            small_cfg(n_labels=0)

    def test_learnable_structure(self):
        """A one-step class-prototype classifier must beat random guessing.

        Signal features are drawn from label prototypes, so averaging the
        feature vectors of each label's samples and scoring by dot product
        should retrieve the right label far above the 1/128 random rate.
        """
        task = generate_xml_task(small_cfg())
        Xtr, Ytr = task.train.X, task.train.Y
        centroids = (Ytr.T @ Xtr).toarray()  # (L, D)
        scores = task.test.X @ centroids.T  # (n_test, L)
        pred = np.asarray(scores.argmax(axis=1)).ravel()
        hit = np.asarray(
            task.test.Y[np.arange(task.test.n_samples), pred]
        ).ravel()
        assert hit.mean() > 10.0 / 128
