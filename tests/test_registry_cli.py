"""Tests for the ``repro runs`` verbs and registry-aware CLI plumbing."""

import json

import pytest

from repro.cli import main
from repro.registry import RunRegistry


@pytest.fixture(scope="module")
def registry_root(tmp_path_factory):
    """One registry holding two CLI-registered train runs."""
    root = tmp_path_factory.mktemp("registry") / "reg"
    for seed in (0, 1):
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2", "--seed", str(seed), "--registry", str(root),
        ]) == 0
    return root


@pytest.fixture(scope="module")
def train_ids(registry_root):
    records = RunRegistry(registry_root, create=False).list(kind="train")
    assert len(records) == 2
    return [r.run_id for r in records]  # newest first


class TestRunsLs:
    def test_table_lists_both_runs(self, capsys, registry_root, train_ids):
        capsys.readouterr()
        assert main(["runs", "ls", "--registry", str(registry_root)]) == 0
        out = capsys.readouterr().out
        for run_id in train_ids:
            assert run_id in out
        assert "Adaptive SGD" in out and "green" in out

    def test_json_and_filters(self, capsys, registry_root, train_ids):
        capsys.readouterr()
        assert main([
            "runs", "ls", "--registry", str(registry_root),
            "--kind", "train", "--status", "green", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in rows] == train_ids
        assert all(r["metrics"]["duration_s"] > 0 for r in rows)

    def test_missing_registry_fails(self, capsys, tmp_path):
        assert main([
            "runs", "ls", "--registry", str(tmp_path / "ghost"),
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_empty_registry_renders(self, capsys, tmp_path):
        RunRegistry(tmp_path / "empty")
        capsys.readouterr()
        assert main([
            "runs", "ls", "--registry", str(tmp_path / "empty"),
        ]) == 0
        assert "no runs registered" in capsys.readouterr().out


class TestRunsShow:
    def test_show_renders_identity_and_metrics(self, capsys, registry_root,
                                               train_ids):
        capsys.readouterr()
        assert main([
            "runs", "show", train_ids[0], "--registry", str(registry_root),
        ]) == 0
        out = capsys.readouterr().out
        assert train_ids[0] in out
        assert "headline metrics" in out and "duration_s" in out

    def test_show_json_carries_manifest(self, capsys, registry_root,
                                        train_ids):
        capsys.readouterr()
        assert main([
            "runs", "show", train_ids[0], "--registry", str(registry_root),
            "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["run_id"] == train_ids[0]
        assert record["manifest"]["dataset"] == "micro"

    def test_unknown_run_fails(self, capsys, registry_root):
        assert main([
            "runs", "show", "train-nope", "--registry", str(registry_root),
        ]) == 1
        assert "error" in capsys.readouterr().err


class TestRunsHistory:
    def test_history_sparkline(self, capsys, registry_root):
        capsys.readouterr()
        assert main([
            "runs", "history", "duration_s", "--registry",
            str(registry_root),
        ]) == 0
        out = capsys.readouterr().out
        assert "duration_s" in out and "2 run(s)" in out
        assert any(block in out for block in "▁▂▃▄▅▆▇█")

    def test_history_json(self, capsys, registry_root, train_ids):
        capsys.readouterr()
        assert main([
            "runs", "history", "duration_s", "--registry",
            str(registry_root), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "duration_s"
        # Chronological: oldest first, i.e. the reverse of ls order.
        assert [p["run_id"] for p in payload["history"]] == train_ids[::-1]

    def test_unknown_metric_renders_empty(self, capsys, registry_root):
        capsys.readouterr()
        assert main([
            "runs", "history", "no_such_metric", "--registry",
            str(registry_root),
        ]) == 0
        assert "no runs recorded" in capsys.readouterr().out


class TestRunsDiff:
    def test_diff_renders_comparison(self, capsys, registry_root, train_ids):
        capsys.readouterr()
        assert main([
            "runs", "diff", train_ids[1], train_ids[0],
            "--registry", str(registry_root),
        ]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "candidate" in out

    def test_diff_json_matches_compare_byte_for_byte(self, capsys,
                                                     registry_root,
                                                     train_ids):
        # The acceptance criterion: `runs diff` and `repro compare` share
        # one comparison + serialization path, so their JSON is identical.
        a, b = train_ids[1], train_ids[0]
        capsys.readouterr()
        assert main([
            "runs", "diff", a, b, "--registry", str(registry_root), "--json",
        ]) == 0
        diff_out = capsys.readouterr().out
        assert main([
            "compare", a, b, "--registry", str(registry_root), "--json",
        ]) == 0
        compare_out = capsys.readouterr().out
        assert diff_out == compare_out
        assert json.loads(diff_out)["phases"]

    def test_diff_unknown_run_fails(self, capsys, registry_root, train_ids):
        assert main([
            "runs", "diff", train_ids[0], "train-nope",
            "--registry", str(registry_root),
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_traceless_run_fails_cleanly_everywhere(self, capsys, tmp_path):
        # Bench runs index no telemetry trace; every verb that resolves a
        # run_id to a trace must print the clean `error: ...` + exit 1,
        # not a raw traceback.
        root = tmp_path / "reg"
        registry = RunRegistry(root)
        for i in range(2):
            registry.register(
                {"run_id": f"bench-{i}", "kind": "bench",
                 "created_s": float(i)}
            )
        for argv in (
            ["runs", "diff", "bench-0", "bench-1"],
            ["compare", "bench-0", "bench-1"],
            ["analyze", "bench-0"],
        ):
            assert main([*argv, "--registry", str(root)]) == 1
            err = capsys.readouterr().err
            assert "error:" in err and "no telemetry trace" in err


class TestRunsGc:
    def test_dry_run_previews_without_deleting(self, capsys, tmp_path):
        root = tmp_path / "reg"
        registry = RunRegistry(root)
        for i in range(3):
            registry.register(
                {"run_id": f"train-{i}", "kind": "train",
                 "created_s": float(i)}
            )
        capsys.readouterr()
        assert main([
            "runs", "gc", "--keep", "1", "--dry-run",
            "--registry", str(root),
        ]) == 0
        out = capsys.readouterr().out
        assert "would delete 2 run(s)" in out
        assert len(registry.list()) == 3
        assert main([
            "runs", "gc", "--keep", "1", "--registry", str(root),
        ]) == 0
        assert "deleted 2 run(s)" in capsys.readouterr().out
        assert [r.run_id for r in registry.list()] == ["train-2"]


class TestRegistryPlumbing:
    def test_analyze_accepts_run_id(self, capsys, registry_root, train_ids):
        capsys.readouterr()
        assert main([
            "analyze", train_ids[0], "--registry", str(registry_root),
            "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["runs"]) == 1
        assert report["runs"][0]["attribution"]["max_residual"] <= 1e-6

    def test_analyze_promtext_carries_run_id_label(self, capsys, tmp_path,
                                                   registry_root, train_ids):
        prom = tmp_path / "metrics.prom"
        assert main([
            "analyze", train_ids[0], "--registry", str(registry_root),
            "--promtext", str(prom),
        ]) == 0
        text = prom.read_text()
        assert f'run_id="{train_ids[0]}"' in text

    def test_env_var_registers(self, capsys, tmp_path, monkeypatch):
        root = tmp_path / "env-reg"
        monkeypatch.setenv("REPRO_REGISTRY", str(root))
        assert main([
            "train", "--dataset", "micro", "--time-budget-s", "0.02",
            "--gpus", "2",
        ]) == 0
        assert "registered:" in capsys.readouterr().out
        records = RunRegistry(root, create=False).list(kind="train")
        assert len(records) == 1

    def test_serve_registers_per_mode(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        stem = tmp_path / "model"
        root = tmp_path / "reg"
        assert main([
            "snapshot", str(stem), "--dataset", "micro",
            "--time-budget-s", "0.02", "--gpus", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", str(stem), "--requests", "100", "--mode", "both",
            "--registry", str(root),
        ]) == 0
        assert "registered:" in capsys.readouterr().out
        records = RunRegistry(root, create=False).list(kind="serve")
        assert {r.algorithm for r in records} == {
            "serve-sequential", "serve-adaptive",
        }
        for record in records:
            assert record.metrics["throughput_rps"] > 0
            assert record.manifest["dataset"] == "micro"
        # Both modes share one telemetry archive; diff works across them.
        ids = [r.run_id for r in records]
        capsys.readouterr()
        assert main([
            "runs", "diff", ids[1], ids[0], "--registry", str(root),
        ]) == 0
        assert "candidate" in capsys.readouterr().out
