"""Property-based tests (hypothesis) for the multi-tenant scheduler.

Invariants under test, over randomized arrival/priority/weight/op
sequences (derandomized: the suite runs the same example budget with the
same seed on every machine, so CI and local runs agree):

- **Work conservation** — ``pop_batch`` never returns empty while work
  is queued, and a full drain terminates in at most one pop per admitted
  request.
- **Request conservation** — every push is accounted for exactly once:
  admitted = popped + still-queued + displaced; ``n_shed`` equals
  door-sheds + displacements and matches the per-tenant and per-class
  shed maps.
- **Batch homogeneity** — a popped batch never mixes priority classes or
  model versions and never exceeds the requested cap; its class is the
  most important class queued at pop time (strict priority).
- **Shed ordering** — a capacity shed or displacement never removes work
  more important than what stays queued: victims come from the worst
  populated tier, and the utilization gate is monotone (a less important
  class always sheds at a lower utilization), with class 0 exempt.
- **Per-class batch caps** — ``AdaptiveBatchSizer`` stays inside
  ``[b_min, b_max]`` under arbitrary observation streams.
- **Version pinning** — ``mis_versioned == 0`` across hot-swaps under
  multi-tenant load (seeded end-to-end run).

``tests/test_serve_tenants.py`` holds the scenario-level acceptance
tests (noisy neighbor, shed accounting, deterministic replay); this file
pins the scheduler's algebra.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import AdaptiveBatchSizer, Request, TenantScheduler

N_CLASSES = 3
TENANTS = ("a", "b", "c", "d")

# One op: ("push", tenant_idx, priority_class, version) or ("pop", cap).
ops_seqs = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(min_value=0, max_value=len(TENANTS) - 1),
            st.integers(min_value=0, max_value=N_CLASSES - 1),
            st.integers(min_value=1, max_value=2),
        ),
        st.tuples(
            st.just("pop"),
            st.integers(min_value=1, max_value=8),
        ),
    ),
    min_size=1, max_size=120,
)

weight_maps = st.fixed_dictionaries(
    {},
    optional={
        t: st.floats(min_value=0.25, max_value=4.0, allow_nan=False)
        for t in TENANTS
    },
)

depths = st.integers(min_value=2, max_value=24)


def fresh(weights=None, max_depth=None, admission_utilization=None):
    return TenantScheduler(
        n_priority_classes=N_CLASSES, weights=weights, max_depth=max_depth,
        admission_utilization=admission_utilization, n_devices=2,
    )


def queued_classes(scheduler):
    return [
        p for p in range(N_CLASSES) if scheduler.class_depth(p) > 0
    ]


def drive(scheduler, ops):
    """Replay an op sequence; returns (admitted, popped, displaced,
    door_shed) request lists and per-batch metadata."""
    admitted, popped, displaced, door_shed, batches = [], [], [], [], []
    for i, op in enumerate(ops):
        if op[0] == "push":
            _, tenant_idx, cls, version = op
            request = Request(
                req_id=i, row=i, t_arrival=float(i), version=version,
                tenant=TENANTS[tenant_idx], priority_class=cls,
            )
            worst_before = max(queued_classes(scheduler), default=None)
            shed = scheduler.push(request, now=float(i))
            if shed is None:
                admitted.append(request)
            elif shed is request:
                door_shed.append((request, worst_before))
            else:
                admitted.append(request)
                displaced.append((shed, request))
        else:
            classes_before = queued_classes(scheduler)
            batch = scheduler.pop_batch(op[1])
            popped.extend(batch)
            batches.append((batch, op[1], classes_before))
    return admitted, popped, displaced, door_shed, batches


class TestSchedulerAlgebra:
    @given(ops_seqs, weight_maps, depths)
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_request_conservation(self, ops, weights, depth):
        scheduler = fresh(weights=weights or None, max_depth=depth)
        admitted, popped, displaced, door_shed, _ = drive(scheduler, ops)
        evicted = [victim for victim, _ in displaced]
        assert len(admitted) == len(popped) + scheduler.depth + len(evicted)
        assert scheduler.n_shed == len(door_shed) + len(evicted)
        assert sum(scheduler.shed_by_tenant.values()) == scheduler.n_shed
        assert sum(scheduler.shed_by_class.values()) == scheduler.n_shed
        # No request is both popped and evicted, and none is popped twice.
        popped_ids = [r.req_id for r in popped]
        assert len(set(popped_ids)) == len(popped_ids)
        assert not (
            set(popped_ids) & {r.req_id for r in evicted}
        )

    @given(ops_seqs, weight_maps, depths)
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_work_conservation_and_finite_drain(self, ops, weights, depth):
        scheduler = fresh(weights=weights or None, max_depth=depth)
        admitted, popped, displaced, _, batches = drive(scheduler, ops)
        for batch, _, classes_before in batches:
            if classes_before:
                assert batch, "pop_batch returned empty with work queued"
        # Drain: one pop per remaining request is always enough.
        remaining = scheduler.depth
        drained = []
        for _ in range(remaining):
            if scheduler.depth == 0:
                break
            batch = scheduler.pop_batch(4)
            assert batch
            drained.extend(batch)
        assert scheduler.depth == 0
        # Every admitted-and-never-evicted request came out exactly once.
        evicted_ids = {victim.req_id for victim, _ in displaced}
        out_ids = sorted(r.req_id for r in popped + drained)
        expected = sorted(
            r.req_id for r in admitted if r.req_id not in evicted_ids
        )
        assert out_ids == expected

    @given(ops_seqs, weight_maps, depths)
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_batches_homogeneous_and_strict_priority(
        self, ops, weights, depth
    ):
        scheduler = fresh(weights=weights or None, max_depth=depth)
        _, _, _, _, batches = drive(scheduler, ops)
        for batch, cap, classes_before in batches:
            assert len(batch) <= cap
            if not batch:
                continue
            assert len({r.priority_class for r in batch}) == 1
            assert len({r.version for r in batch}) == 1
            # Strict priority: the batch drains the most important
            # populated tier.
            assert batch[0].priority_class == min(classes_before)

    @given(ops_seqs, depths)
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_shed_ordering_by_priority(self, ops, depth):
        scheduler = fresh(max_depth=depth)
        _, _, displaced, door_shed, _ = drive(scheduler, ops)
        for request, worst_before in door_shed:
            # Shed at the door only when nothing queued is less important.
            assert worst_before is not None
            assert request.priority_class >= worst_before
            assert request.shed
            assert request.shed_reason == "capacity"
        for victim, incoming in displaced:
            assert victim.shed
            assert victim.shed_reason == "displaced"
            assert victim.priority_class >= incoming.priority_class

    @given(
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_utilization_gate_monotone(self, threshold, busy_frac):
        scheduler = fresh(admission_utilization=threshold)
        # Two devices, clock at 1.0 -> utilization == busy_frac.
        scheduler.observe_busy(2.0 * busy_frac)
        gates = [scheduler.shed_gate(p) for p in range(N_CLASSES)]
        assert gates[0] is None  # class 0 is never utilization-shed
        # Less important classes shed at lower utilization.
        for higher, lower in zip(gates[1:], gates[2:]):
            assert higher >= lower
        for p, gate in enumerate(gates[1:], start=1):
            assert gate >= threshold
            request = Request(
                req_id=p, row=0, t_arrival=1.0, version=1,
                tenant="a", priority_class=p,
            )
            shed = scheduler.push(request, now=1.0)
            if scheduler.utilization(1.0) >= gate:
                assert shed is request
                assert request.shed_reason == "utilization"
            else:
                assert shed is None


class TestSizerClampProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=16, max_value=256),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=256),
                st.floats(
                    min_value=1e-7, max_value=1.0, allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_cap_always_within_bounds(self, b_min, b_max, observations):
        sizer = AdaptiveBatchSizer(
            b_min=b_min, b_max=b_max, target_latency_s=1e-3,
        )
        assert b_min <= sizer.cap <= b_max
        for batch_size, service_s in observations:
            cap = sizer.observe(batch_size, service_s)
            assert b_min <= cap <= b_max
            assert cap == sizer.cap


class TestWeightedFairness:
    def test_drr_honors_weights_on_backlogged_tenants(self):
        """Two same-class backlogged tenants at weights 2:1 drain 2:1."""
        scheduler = fresh(weights={"a": 2.0, "b": 1.0})
        for i in range(400):
            tenant = "a" if i % 2 == 0 else "b"
            scheduler.push(
                Request(
                    req_id=i, row=i, t_arrival=0.0, version=1,
                    tenant=tenant, priority_class=0,
                )
            )
        counts = {"a": 0, "b": 0}
        for _ in range(60):
            for request in scheduler.pop_batch(3):
                counts[request.tenant] += 1
        assert counts["a"] + counts["b"] == 180
        ratio = counts["a"] / counts["b"]
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_equal_weights_drain_evenly(self):
        scheduler = fresh()
        for i in range(300):
            scheduler.push(
                Request(
                    req_id=i, row=i, t_arrival=0.0, version=1,
                    tenant=TENANTS[i % 3], priority_class=0,
                )
            )
        counts = dict.fromkeys(TENANTS[:3], 0)
        for _ in range(30):
            for request in scheduler.pop_batch(4):
                counts[request.tenant] += 1
        low, high = min(counts.values()), max(counts.values())
        assert high - low <= 4  # one visit's worth of slack


class TestVersionPinningUnderTenantLoad:
    def test_mis_versioned_zero_across_swaps(self, micro_task, tmp_path):
        """Seeded end-to-end run: hot-swaps + multi-tenant scheduling
        must never score a request against the wrong version."""
        from repro.api import make_engine
        from repro.serve import (
            LoadSpec,
            ModelSnapshot,
            SnapshotStore,
            generate_arrivals,
        )
        from repro.sparse.mlp import MLPArchitecture, SparseMLP

        arch = MLPArchitecture(
            micro_task.n_features, micro_task.n_labels, hidden=(32,)
        )
        store = SnapshotStore(tmp_path / "store")
        for seed, t_pub in ((31, 0.0), (32, 0.0015), (33, 0.003)):
            store.publish(
                ModelSnapshot(
                    arch=arch, state=SparseMLP(arch).init_state(seed=seed),
                    meta={"dataset": "micro"},
                ),
                published_s=t_pub,
            )
        engine = make_engine(
            store, mode="adaptive", n_gpus=2,
            class_slo_ms={0: 2.0, 1: 2.0, 2: 2.0}, max_queue_depth=128,
        )
        n = 400
        arrivals = generate_arrivals(
            LoadSpec(n_requests=n, rate_rps=n / 0.006, seed=11)
        )
        tenants = np.array(
            [TENANTS[i % 3] for i in range(n)], dtype=object
        )
        classes = (np.arange(n) % 3).astype(np.int64)
        result = engine.serve(
            micro_task.test.X, arrivals, k=5,
            tenants=tenants, priority_classes=classes,
        )
        assert result.n_swaps >= 1
        assert result.mis_versioned == 0
        for request in result.requests:
            if request.t_done is not None:
                assert request.served_version == request.version
