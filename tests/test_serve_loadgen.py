"""Tests for repro.serve.loadgen — arrival processes and latency reports."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve.loadgen import (
    LatencyReport,
    LoadSpec,
    generate_arrivals,
    nearest_rank_percentile,
    sample_query_rows,
)


class TestLoadSpec:
    @pytest.mark.parametrize("kwargs", [
        dict(n_requests=0, rate_rps=10.0),
        dict(n_requests=10, rate_rps=0.0),
        dict(n_requests=10, rate_rps=10.0, pattern="sine"),
        dict(n_requests=10, rate_rps=10.0, burst_factor=1.0),
        dict(n_requests=10, rate_rps=10.0, burst_fraction=0.0),
        dict(n_requests=10, rate_rps=10.0, burst_fraction=1.0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadSpec(**kwargs)


class TestArrivals:
    def test_poisson_count_and_order(self):
        spec = LoadSpec(n_requests=500, rate_rps=1000.0, seed=1)
        t = generate_arrivals(spec)
        assert t.shape == (500,)
        assert np.all(np.diff(t) >= 0)
        assert np.all(t > 0)

    def test_poisson_mean_rate(self):
        spec = LoadSpec(n_requests=5000, rate_rps=1000.0, seed=2)
        t = generate_arrivals(spec)
        observed = spec.n_requests / t[-1]
        assert observed == pytest.approx(1000.0, rel=0.1)

    def test_deterministic_per_seed(self):
        spec = LoadSpec(n_requests=100, rate_rps=50.0, seed=7)
        assert np.array_equal(generate_arrivals(spec), generate_arrivals(spec))
        other = LoadSpec(n_requests=100, rate_rps=50.0, seed=8)
        assert not np.array_equal(
            generate_arrivals(spec), generate_arrivals(other)
        )

    def test_burst_preserves_average_rate(self):
        spec = LoadSpec(
            n_requests=8000, rate_rps=1000.0, pattern="burst", seed=3
        )
        t = generate_arrivals(spec)
        assert t.shape == (8000,)
        assert np.all(np.diff(t) >= 0)
        observed = spec.n_requests / t[-1]
        assert observed == pytest.approx(1000.0, rel=0.1)

    def test_burst_has_hot_and_cold_phases(self):
        """The gap distribution must be bimodal: hot gaps ~factor x shorter."""
        spec = LoadSpec(
            n_requests=4000, rate_rps=1000.0, pattern="burst",
            burst_factor=8.0, seed=4,
        )
        gaps = np.diff(generate_arrivals(spec))
        median = np.median(gaps)
        hot = gaps[gaps < median / 2]
        cold = gaps[gaps > median]
        assert hot.size > 100 and cold.size > 100
        assert cold.mean() / hot.mean() > 4.0


class TestQueryRows:
    def test_in_bounds_and_deterministic(self):
        rows = sample_query_rows(37, 400, seed=5)
        assert rows.shape == (400,)
        assert rows.min() >= 0 and rows.max() < 37
        assert np.array_equal(rows, sample_query_rows(37, 400, seed=5))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_query_rows(0, 10)


class TestNearestRankPercentile:
    def test_textbook_values(self):
        values = list(range(1, 11))  # 1..10
        assert nearest_rank_percentile(values, 50) == 5
        assert nearest_rank_percentile(values, 95) == 10
        assert nearest_rank_percentile(values, 100) == 10
        assert nearest_rank_percentile(values, 1) == 1

    def test_is_an_observed_value(self):
        values = [0.2, 5.0, 9.0]
        for p in (10, 50, 90, 99):
            assert nearest_rank_percentile(values, p) in values

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([1.0], 0)
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([1.0], 101)
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([], 50)


class TestLatencyReport:
    def _report(self):
        return LatencyReport(
            n_requests=4,
            makespan_s=2.0,
            latencies_s=np.array([0.1, 0.2, 0.3, 0.4]),
            queue_delays_s=np.array([0.0, 0.1, 0.1, 0.2]),
            batch_sizes=[2, 2],
            meta={"mode": "adaptive"},
        )

    def test_throughput(self):
        assert self._report().throughput_rps == pytest.approx(2.0)
        empty = LatencyReport(
            n_requests=0, makespan_s=0.0,
            latencies_s=np.array([]), queue_delays_s=np.array([]),
        )
        assert empty.throughput_rps == 0.0
        assert empty.mean_batch_size == 0.0

    def test_as_dict_is_json_safe(self, tmp_path):
        from repro.utils.serialization import save_json

        doc = self._report().as_dict()
        assert doc["latency_p50_ms"] == pytest.approx(200.0)
        assert doc["mean_batch_size"] == pytest.approx(2.0)
        assert doc["mode"] == "adaptive"
        save_json(tmp_path / "report.json", doc)  # must not raise
