"""Tests for repro.serve.loadgen — arrival processes, multi-tenant load
merging, vectorized percentile accounting, and latency reports."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serve.loadgen import (
    LatencyReport,
    LoadSpec,
    TenantLoad,
    fairness_ratio,
    generate_arrivals,
    generate_multi_tenant_arrivals,
    grouped_nearest_rank_percentiles,
    nearest_rank_percentile,
    nearest_rank_percentiles,
    per_tenant_stats,
    sample_query_rows,
)


class TestLoadSpec:
    @pytest.mark.parametrize("kwargs", [
        dict(n_requests=0, rate_rps=10.0),
        dict(n_requests=10, rate_rps=0.0),
        dict(n_requests=10, rate_rps=10.0, pattern="sine"),
        dict(n_requests=10, rate_rps=10.0, burst_factor=1.0),
        dict(n_requests=10, rate_rps=10.0, burst_fraction=0.0),
        dict(n_requests=10, rate_rps=10.0, burst_fraction=1.0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadSpec(**kwargs)


class TestArrivals:
    def test_poisson_count_and_order(self):
        spec = LoadSpec(n_requests=500, rate_rps=1000.0, seed=1)
        t = generate_arrivals(spec)
        assert t.shape == (500,)
        assert np.all(np.diff(t) >= 0)
        assert np.all(t > 0)

    def test_poisson_mean_rate(self):
        spec = LoadSpec(n_requests=5000, rate_rps=1000.0, seed=2)
        t = generate_arrivals(spec)
        observed = spec.n_requests / t[-1]
        assert observed == pytest.approx(1000.0, rel=0.1)

    def test_deterministic_per_seed(self):
        spec = LoadSpec(n_requests=100, rate_rps=50.0, seed=7)
        assert np.array_equal(generate_arrivals(spec), generate_arrivals(spec))
        other = LoadSpec(n_requests=100, rate_rps=50.0, seed=8)
        assert not np.array_equal(
            generate_arrivals(spec), generate_arrivals(other)
        )

    def test_burst_preserves_average_rate(self):
        spec = LoadSpec(
            n_requests=8000, rate_rps=1000.0, pattern="burst", seed=3
        )
        t = generate_arrivals(spec)
        assert t.shape == (8000,)
        assert np.all(np.diff(t) >= 0)
        observed = spec.n_requests / t[-1]
        assert observed == pytest.approx(1000.0, rel=0.1)

    def test_burst_has_hot_and_cold_phases(self):
        """The gap distribution must be bimodal: hot gaps ~factor x shorter."""
        spec = LoadSpec(
            n_requests=4000, rate_rps=1000.0, pattern="burst",
            burst_factor=8.0, seed=4,
        )
        gaps = np.diff(generate_arrivals(spec))
        median = np.median(gaps)
        hot = gaps[gaps < median / 2]
        cold = gaps[gaps > median]
        assert hot.size > 100 and cold.size > 100
        assert cold.mean() / hot.mean() > 4.0


class TestQueryRows:
    def test_in_bounds_and_deterministic(self):
        rows = sample_query_rows(37, 400, seed=5)
        assert rows.shape == (400,)
        assert rows.min() >= 0 and rows.max() < 37
        assert np.array_equal(rows, sample_query_rows(37, 400, seed=5))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_query_rows(0, 10)


class TestNearestRankPercentile:
    def test_textbook_values(self):
        values = list(range(1, 11))  # 1..10
        assert nearest_rank_percentile(values, 50) == 5
        assert nearest_rank_percentile(values, 95) == 10
        assert nearest_rank_percentile(values, 100) == 10
        assert nearest_rank_percentile(values, 1) == 1

    def test_is_an_observed_value(self):
        values = [0.2, 5.0, 9.0]
        for p in (10, 50, 90, 99):
            assert nearest_rank_percentile(values, p) in values

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([1.0], 0)
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([1.0], 101)
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile([], 50)


class TestMultiTenantArrivals:
    def _loads(self):
        return [
            TenantLoad(
                "a", LoadSpec(n_requests=300, rate_rps=900.0, seed=1), 0
            ),
            TenantLoad(
                "b", LoadSpec(n_requests=200, rate_rps=600.0, seed=2), 1
            ),
        ]

    def test_merge_is_sorted_and_tagged(self):
        times, tenants, classes = generate_multi_tenant_arrivals(
            self._loads()
        )
        assert times.shape == tenants.shape == classes.shape == (500,)
        assert np.all(np.diff(times) >= 0)
        assert np.sum(tenants == "a") == 300
        assert np.sum(tenants == "b") == 200
        assert np.all(classes[tenants == "a"] == 0)
        assert np.all(classes[tenants == "b"] == 1)

    def test_tenant_schedule_independent_of_contention(self):
        """A tenant's arrival times are identical solo vs merged — the
        property the noisy-neighbor comparison rests on."""
        loads = self._loads()
        solo = generate_arrivals(loads[0].spec)
        times, tenants, _ = generate_multi_tenant_arrivals(loads)
        assert np.array_equal(times[tenants == "a"], solo)

    def test_duplicate_tenant_rejected(self):
        loads = self._loads()
        loads[1] = TenantLoad("a", loads[1].spec, 1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            generate_multi_tenant_arrivals(loads)

    def test_tenant_load_validated(self):
        spec = LoadSpec(n_requests=10, rate_rps=10.0)
        with pytest.raises(ConfigurationError):
            TenantLoad("", spec)
        with pytest.raises(ConfigurationError):
            TenantLoad("a", spec, priority_class=-1)


class TestBulkPercentiles:
    def test_matches_scalar_implementation(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(size=257)
        ps = (1.0, 50.0, 95.0, 99.0, 100.0)
        bulk = nearest_rank_percentiles(values, ps)
        for p, got in zip(ps, bulk):
            assert got == nearest_rank_percentile(values, p)

    def test_grouped_matches_per_group_calls(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 4, size=500)
        values = rng.exponential(size=500)
        ps = (50.0, 99.0)
        table = grouped_nearest_rank_percentiles(codes, values, ps, 5)
        assert table.shape == (5, 2)
        for g in range(4):
            group = values[codes == g]
            for j, p in enumerate(ps):
                assert table[g, j] == nearest_rank_percentile(group, p)
        assert np.all(np.isnan(table[4]))  # empty group -> NaN row

    def test_single_element_groups(self):
        table = grouped_nearest_rank_percentiles(
            np.array([0, 1]), np.array([3.0, 7.0]), (50.0, 99.0), 2
        )
        assert np.array_equal(table, [[3.0, 3.0], [7.0, 7.0]])


class TestPerTenantStats:
    def test_stats_and_shed_rows(self):
        tenants = np.array(["a", "a", "b"], dtype=object)
        latencies = np.array([0.1, 0.3, 0.2])
        stats = per_tenant_stats(
            tenants, latencies, makespan_s=2.0,
            shed_by_tenant={"a": 1, "ghost": 4},
            classes=np.array([0, 0, 1]),
        )
        assert stats["a"]["completed"] == 2
        assert stats["a"]["n_shed"] == 1
        assert stats["a"]["throughput_rps"] == pytest.approx(1.0)
        assert stats["a"]["latency_p99_ms"] == pytest.approx(300.0)
        assert stats["a"]["priority_classes"] == [0]
        assert stats["b"]["priority_classes"] == [1]
        # A tenant whose every request was shed still gets a row.
        assert stats["ghost"]["completed"] == 0
        assert stats["ghost"]["n_shed"] == 4
        assert np.isnan(stats["ghost"]["latency_p99_ms"])


class TestFairnessRatio:
    def test_equal_throughput_is_one(self):
        stats = {
            "a": {"throughput_rps": 5.0},
            "b": {"throughput_rps": 5.0},
        }
        assert fairness_ratio(stats) == pytest.approx(1.0)

    def test_weight_normalized(self):
        stats = {
            "a": {"throughput_rps": 10.0},
            "b": {"throughput_rps": 5.0},
        }
        assert fairness_ratio(stats) == pytest.approx(2.0)
        assert fairness_ratio(
            stats, weights={"a": 2.0, "b": 1.0}
        ) == pytest.approx(1.0)

    def test_degenerate_cases(self):
        assert fairness_ratio({"a": {"throughput_rps": 1.0}}) is None
        starved = {
            "a": {"throughput_rps": 1.0},
            "b": {"throughput_rps": 0.0},
        }
        assert fairness_ratio(starved) == np.inf


class TestLatencyReport:
    def _report(self):
        return LatencyReport(
            n_requests=4,
            makespan_s=2.0,
            latencies_s=np.array([0.1, 0.2, 0.3, 0.4]),
            queue_delays_s=np.array([0.0, 0.1, 0.1, 0.2]),
            batch_sizes=[2, 2],
            meta={"mode": "adaptive"},
        )

    def test_throughput(self):
        assert self._report().throughput_rps == pytest.approx(2.0)
        empty = LatencyReport(
            n_requests=0, makespan_s=0.0,
            latencies_s=np.array([]), queue_delays_s=np.array([]),
        )
        assert empty.throughput_rps == 0.0
        assert empty.mean_batch_size == 0.0

    def test_as_dict_is_json_safe(self, tmp_path):
        from repro.utils.serialization import save_json

        doc = self._report().as_dict()
        assert doc["latency_p50_ms"] == pytest.approx(200.0)
        assert doc["mean_batch_size"] == pytest.approx(2.0)
        assert doc["mode"] == "adaptive"
        save_json(tmp_path / "report.json", doc)  # must not raise
