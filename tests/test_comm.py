"""Tests for repro.comm — topology, ring/tree all-reduce numerics and timing."""

import numpy as np
import pytest

from repro.comm.allreduce import validate_operands
from repro.comm.halving_doubling import HalvingDoublingAllReduce
from repro.comm.ring import RingAllReduce
from repro.comm.topology import InterconnectTopology
from repro.comm.tree import TreeAllReduce
from repro.exceptions import CommunicationError


def reference(vectors, weights):
    acc = sum(
        np.float64(w) * v.astype(np.float64) for w, v in zip(weights, vectors)
    )
    return acc.astype(np.float32)


def random_operands(n, size, seed=0):
    rng = np.random.default_rng(seed)
    vectors = [rng.normal(size=size).astype(np.float32) for _ in range(n)]
    weights = rng.random(n).tolist()
    return vectors, weights


class TestTopology:
    def test_transfer_time_affine(self):
        topo = InterconnectTopology.single_server_pcie(4)
        t0 = topo.transfer_time(0)
        t1 = topo.transfer_time(10_000_000)
        assert t0 == pytest.approx(topo.link_latency_s)
        assert t1 == pytest.approx(
            topo.link_latency_s + 1e7 / topo.link_bandwidth_Bps
        )

    def test_contention_shares_bandwidth(self):
        topo = InterconnectTopology.single_server_pcie(4)
        solo = topo.transfer_time(1e7)
        shared = topo.transfer_time(1e7, concurrent_on_link=2)
        assert shared > solo

    def test_nvlink_faster_than_pcie(self):
        pcie = InterconnectTopology.single_server_pcie(4)
        nvlink = InterconnectTopology.single_server_nvlink(4)
        assert nvlink.transfer_time(1e8) < pcie.transfer_time(1e8)

    def test_invalid_args_rejected(self):
        topo = InterconnectTopology.single_server_pcie(2)
        with pytest.raises(CommunicationError):
            topo.transfer_time(-1)
        with pytest.raises(CommunicationError):
            topo.transfer_time(1, concurrent_on_link=0)
        with pytest.raises(CommunicationError):
            InterconnectTopology(n_devices=0)


class TestValidateOperands:
    def test_happy_path_casts(self):
        out = validate_operands([np.arange(4, dtype=np.float64)], [1.0])
        assert out[0].dtype == np.float32

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(CommunicationError):
            validate_operands(
                [np.zeros(3, np.float32), np.zeros(4, np.float32)], [1, 1]
            )

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(CommunicationError):
            validate_operands([np.zeros(3, np.float32)], [1, 1])

    def test_empty_rejected(self):
        with pytest.raises(CommunicationError):
            validate_operands([], [])

    def test_2d_rejected(self):
        with pytest.raises(CommunicationError):
            validate_operands([np.zeros((2, 2), np.float32)], [1.0])


@pytest.mark.parametrize("algo_factory", [
    lambda: RingAllReduce(1),
    lambda: RingAllReduce(4),
    lambda: TreeAllReduce(),
    lambda: HalvingDoublingAllReduce(),
])
class TestNumerics:
    @pytest.mark.parametrize("n,size", [
        (1, 10), (2, 16), (3, 17), (4, 64), (5, 101), (8, 7),
    ])
    def test_matches_reference(self, algo_factory, n, size):
        vectors, weights = random_operands(n, size, seed=n * 100 + size)
        got = algo_factory().reduce(vectors, weights)
        assert np.allclose(got, reference(vectors, weights), atol=1e-4)

    def test_size_smaller_than_devices(self, algo_factory):
        # More devices than elements: some ring chunks are empty.
        vectors, weights = random_operands(6, 3, seed=1)
        got = algo_factory().reduce(vectors, weights)
        assert np.allclose(got, reference(vectors, weights), atol=1e-5)

    def test_inputs_not_mutated(self, algo_factory):
        vectors, weights = random_operands(4, 32, seed=2)
        originals = [v.copy() for v in vectors]
        algo_factory().reduce(vectors, weights)
        for v, orig in zip(vectors, originals):
            assert np.array_equal(v, orig)


class TestTiming:
    def test_single_device_free(self):
        topo = InterconnectTopology.single_server_pcie(1)
        assert RingAllReduce(1).time_seconds(1e6, topo).total_s == 0.0
        assert TreeAllReduce().time_seconds(1e6, topo).total_s == 0.0

    def test_ring_rounds(self):
        topo = InterconnectTopology.single_server_pcie(4)
        timing = RingAllReduce(1).time_seconds(4_000_000, topo)
        assert timing.rounds == 2 * 3

    def test_tree_rounds(self):
        topo = InterconnectTopology.single_server_pcie(4)
        timing = TreeAllReduce().time_seconds(4_000_000, topo)
        assert timing.rounds == 2 * 2  # 2 levels up + 2 down

    def test_multi_stream_ring_faster(self):
        topo = InterconnectTopology.single_server_pcie(4)
        multi = RingAllReduce(4).time_seconds(4_000_000, topo)
        single = RingAllReduce(1).time_seconds(4_000_000, topo)
        assert multi.total_s < single.total_s

    def test_paper_claim_ring_multi_at_least_2x_tree(self):
        """§IV: multi-stream ring merges >= 2x faster than single-stream tree."""
        topo = InterconnectTopology.single_server_pcie(4)
        for nbytes in (1_000_000, 4_000_000, 64_000_000):
            ring = RingAllReduce(4).time_seconds(nbytes, topo)
            tree = TreeAllReduce().time_seconds(nbytes, topo)
            assert tree.total_s >= 2.0 * ring.total_s

    def test_tree_wins_for_tiny_messages(self):
        # Fewer rounds -> fewer latency terms: the small-message crossover.
        topo = InterconnectTopology.single_server_pcie(8)
        ring = RingAllReduce(1).time_seconds(256, topo)
        tree = TreeAllReduce().time_seconds(256, topo)
        assert tree.total_s < ring.total_s

    def test_time_monotone_in_bytes(self):
        topo = InterconnectTopology.single_server_pcie(4)
        for algo in (RingAllReduce(4), TreeAllReduce()):
            small = algo.time_seconds(1_000_000, topo).total_s
            big = algo.time_seconds(10_000_000, topo).total_s
            assert big > small

    def test_instance_stream_default_used(self):
        topo = InterconnectTopology.single_server_pcie(4)
        algo = RingAllReduce(4)
        default = algo.time_seconds(4_000_000, topo)
        explicit = algo.time_seconds(4_000_000, topo, n_streams=4)
        assert default.total_s == explicit.total_s

    def test_invalid_streams_rejected(self):
        with pytest.raises(CommunicationError):
            RingAllReduce(0)
        topo = InterconnectTopology.single_server_pcie(2)
        with pytest.raises(CommunicationError):
            TreeAllReduce().time_seconds(100, topo, n_streams=0)
        with pytest.raises(CommunicationError):
            HalvingDoublingAllReduce().time_seconds(100, topo, n_streams=0)

    def test_halving_doubling_sits_between_ring_and_tree(self):
        """HD: ring-like bandwidth with tree-like round count — for large
        single-stream transfers it beats the tree and loses to nothing by
        much."""
        topo = InterconnectTopology.single_server_pcie(4)
        nbytes = 16_000_000
        hd = HalvingDoublingAllReduce().time_seconds(nbytes, topo)
        tree = TreeAllReduce().time_seconds(nbytes, topo)
        ring1 = RingAllReduce(1).time_seconds(nbytes, topo)
        assert hd.total_s < tree.total_s
        assert hd.rounds == tree.rounds  # 2 log2(N)
        assert hd.rounds < ring1.rounds  # fewer latency terms than the ring
