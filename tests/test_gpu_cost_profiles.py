"""Tests for repro.gpu.cost and repro.gpu.profiles."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gpu.cost import (
    CpuCostModel,
    CpuCostParams,
    GpuCostModel,
    GpuCostParams,
    StepWorkload,
)
from repro.gpu.profiles import (
    SpeedProfile,
    make_heterogeneous_profiles,
    make_uniform_profiles,
)

WORK = StepWorkload(batch_size=64, batch_nnz=2000, layer_dims=(500, 64, 300))


class TestGpuCostModel:
    def test_step_time_positive(self):
        assert GpuCostModel().step_time(WORK) > 0

    def test_slower_speed_longer_time(self):
        model = GpuCostModel()
        assert model.step_time(WORK, speed=0.5) > model.step_time(WORK, speed=1.0)

    def test_nnz_sensitivity(self):
        """Sparse-input cost must grow with the batch's non-zero count."""
        model = GpuCostModel(GpuCostParams.tiny_model_profile())
        sparse_heavy = StepWorkload(64, 20_000, (500, 64, 300))
        assert model.step_time(sparse_heavy) > model.step_time(WORK)

    def test_interference_grows_with_active_gpus(self):
        model = GpuCostModel()
        t1 = model.launch_overhead(1)
        t4 = model.launch_overhead(4)
        assert t4 > t1
        assert t4 == pytest.approx(t1 * (1 + 0.35 * 3))

    def test_fusion_reduces_launch_overhead(self):
        params = GpuCostParams()
        fused = GpuCostModel(params, fused=True)
        unfused = GpuCostModel(params, fused=False)
        assert fused.launch_overhead(4) < unfused.launch_overhead(4)
        ratio = unfused.launch_overhead(4) / fused.launch_overhead(4)
        assert ratio == pytest.approx(
            params.kernels_per_step_unfused / params.kernels_per_step_fused
        )

    def test_h2d_optional(self):
        model = GpuCostModel()
        with_h2d = model.step_time(WORK, include_h2d=True)
        without = model.step_time(WORK, include_h2d=False)
        assert with_h2d > without

    def test_model_transfer_linear(self):
        model = GpuCostModel()
        assert model.model_transfer_time(2_000_000) == pytest.approx(
            2 * model.model_transfer_time(1_000_000)
        )

    def test_invalid_inputs_rejected(self):
        model = GpuCostModel()
        with pytest.raises(ConfigurationError):
            model.step_time(WORK, speed=0.0)
        with pytest.raises(ConfigurationError):
            model.launch_overhead(0)
        with pytest.raises(ConfigurationError):
            model.model_transfer_time(-1)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuCostParams(dense_flops_per_s=0)
        with pytest.raises(ConfigurationError):
            GpuCostParams(kernels_per_step_fused=100)

    def test_tiny_profile_lower_overhead_share(self):
        """In the tiny profile, compute dominates constants (by design)."""
        tiny = GpuCostModel(GpuCostParams.tiny_model_profile())
        small_work = StepWorkload(128, 128 * 20, (768, 64, 1536))
        total = tiny.step_time(small_work, n_active_gpus=4)
        constants = (
            tiny.launch_overhead(4) + tiny.params.step_overhead_s
        )
        assert constants < 0.25 * total


class TestLshInferenceTime:
    # XML-shaped workload: wide output layer, small hidden — the regime
    # the approximate scorer exists for.
    XML = StepWorkload(batch_size=64, batch_nnz=2000,
                       layer_dims=(500, 128, 32768))

    def test_selective_retrieval_beats_exact(self):
        model = GpuCostModel(GpuCostParams.tiny_model_profile())
        exact = model.inference_time(self.XML)
        lsh = model.lsh_inference_time(self.XML, 0.01)
        assert lsh < exact

    def test_full_candidates_lose_to_exact(self):
        """At fraction 1.0 LSH does the exact path's work at sparse
        throughput plus hashing — it must always price higher."""
        model = GpuCostModel(GpuCostParams.tiny_model_profile())
        exact = model.inference_time(WORK)
        lsh = model.lsh_inference_time(WORK, 1.0)
        assert lsh > exact

    def test_monotone_in_candidate_fraction(self):
        model = GpuCostModel()
        times = [
            model.lsh_inference_time(self.XML, f)
            for f in (0.001, 0.01, 0.1, 1.0)
        ]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_hash_geometry_costs(self):
        model = GpuCostModel()
        cheap = model.lsh_inference_time(self.XML, 0.01, n_tables=4, n_bits=4)
        steep = model.lsh_inference_time(
            self.XML, 0.01, n_tables=32, n_bits=16
        )
        assert steep > cheap

    def test_speed_scales_service_time(self):
        model = GpuCostModel()
        assert model.lsh_inference_time(self.XML, 0.01, speed=0.5) > (
            model.lsh_inference_time(self.XML, 0.01, speed=1.0)
        )

    def test_invalid_inputs_rejected(self):
        model = GpuCostModel()
        with pytest.raises(ConfigurationError):
            model.lsh_inference_time(self.XML, -0.1)
        with pytest.raises(ConfigurationError):
            model.lsh_inference_time(self.XML, 1.5)
        with pytest.raises(ConfigurationError):
            model.lsh_inference_time(self.XML, 0.01, speed=0.0)
        with pytest.raises(ConfigurationError):
            model.lsh_inference_time(self.XML, 0.01, n_tables=0)
        with pytest.raises(ConfigurationError):
            model.lsh_inference_time(self.XML, 0.01, n_probes=0)


class TestLshRebuildTime:
    """Pricing of the hot-swap warming step (rebuild the serving index)."""

    def test_positive_and_off_path(self):
        model = GpuCostModel()
        t = model.lsh_rebuild_time(1000, 64)
        assert t > 0

    def test_monotone_in_label_count_and_geometry(self):
        model = GpuCostModel()
        small = model.lsh_rebuild_time(1_000, 64, n_tables=8, n_bits=8)
        more_labels = model.lsh_rebuild_time(100_000, 64, n_tables=8, n_bits=8)
        more_tables = model.lsh_rebuild_time(1_000, 64, n_tables=64, n_bits=16)
        assert more_labels > small
        assert more_tables > small

    def test_speed_scales_warm_time(self):
        model = GpuCostModel()
        slow = model.lsh_rebuild_time(10_000, 64, speed=0.5)
        fast = model.lsh_rebuild_time(10_000, 64, speed=1.0)
        assert slow > fast

    def test_invalid_inputs_rejected(self):
        model = GpuCostModel()
        with pytest.raises(ConfigurationError):
            model.lsh_rebuild_time(0, 64)
        with pytest.raises(ConfigurationError):
            model.lsh_rebuild_time(100, 0)
        with pytest.raises(ConfigurationError):
            model.lsh_rebuild_time(100, 64, n_tables=0)
        with pytest.raises(ConfigurationError):
            model.lsh_rebuild_time(100, 64, speed=0.0)

    def test_model_transfer_time(self):
        model = GpuCostModel()
        assert model.model_transfer_time(0) == 0.0
        assert model.model_transfer_time(1 << 20) > 0
        with pytest.raises(ConfigurationError):
            model.model_transfer_time(-1)


class TestStepWorkload:
    def test_batch_bytes(self):
        work = StepWorkload(10, 100, (5, 3, 2))
        assert work.batch_bytes == 8 * 100 + 4 * 11


class TestCpuCostModel:
    def test_thread_scaling_sublinear_but_monotone(self):
        model = CpuCostModel()
        t1 = model.samples_time(1e6, 100, 1)
        t8 = model.samples_time(1e6, 100, 8)
        t32 = model.samples_time(1e6, 100, 32)
        assert t1 > t8 > t32
        assert t1 / t32 < 32  # efficiency < 1 makes scaling sublinear

    def test_invalid_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuCostModel().samples_time(1e6, 10, 0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuCostParams(thread_efficiency=0.0)


class TestSpeedProfile:
    def test_deterministic_trace(self):
        p1 = SpeedProfile(base=0.9, seed=3)
        p2 = SpeedProfile(base=0.9, seed=3)
        times = np.linspace(0, 30, 40)
        assert [p1.speed(t) for t in times] == [p2.speed(t) for t in times]

    def test_speed_positive_and_near_base(self):
        profile = SpeedProfile(base=0.8, seed=1)
        for t in np.linspace(0, 60, 100):
            s = profile.speed(float(t))
            assert 0.8 * 0.9 < s < 0.8 * 1.1

    def test_oscillation_changes_speed_over_time(self):
        profile = SpeedProfile(base=1.0, osc_amplitude=0.05,
                               jitter_amplitude=0.0, seed=0)
        speeds = {round(profile.speed(t), 6) for t in np.linspace(0, 7, 20)}
        assert len(speeds) > 5

    def test_no_noise_profile_constant(self):
        profile = SpeedProfile(base=1.0, osc_amplitude=0.0,
                               jitter_amplitude=0.0, seed=0)
        assert profile.speed(0.0) == profile.speed(100.0) == 1.0

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            SpeedProfile().speed(-1.0)

    def test_jitter_queried_out_of_order(self):
        profile = SpeedProfile(seed=2)
        late = profile.speed(50.0)
        early = profile.speed(1.0)
        assert profile.speed(50.0) == late  # cache is stable
        assert profile.speed(1.0) == early


class TestProfileFactories:
    def test_heterogeneous_gap(self):
        profiles = make_heterogeneous_profiles(4, max_gap=0.32, seed=0)
        bases = sorted(p.base for p in profiles)
        assert bases[0] == pytest.approx(0.68)
        assert bases[-1] == pytest.approx(1.0)

    def test_single_gpu_no_gap(self):
        profiles = make_heterogeneous_profiles(1, seed=0)
        assert profiles[0].base == 1.0

    def test_uniform_profiles_identical_speed(self):
        profiles = make_uniform_profiles(3, seed=0)
        assert all(p.speed(5.0) == 1.0 for p in profiles)

    def test_assignment_shuffled(self):
        # Device id should not always encode the speed rank.
        hits = 0
        for seed in range(10):
            profiles = make_heterogeneous_profiles(4, seed=seed)
            bases = [p.base for p in profiles]
            if bases != sorted(bases, reverse=True):
                hits += 1
        assert hits > 0

    def test_invalid_args_rejected(self):
        with pytest.raises(ConfigurationError):
            make_heterogeneous_profiles(0)
        with pytest.raises(ConfigurationError):
            make_heterogeneous_profiles(2, max_gap=0.95)
