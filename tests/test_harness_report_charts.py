"""Tests for the report renderer's chart integration."""

from repro.harness.report import render_tta_curves
from repro.harness.traces import TracePoint, TrainingTrace


def make_trace(accs, algorithm="A", n=4):
    trace = TrainingTrace(algorithm=algorithm, dataset="d", n_devices=n)
    for i, acc in enumerate(accs):
        trace.record_point(TracePoint(
            time_s=float(i), epochs=float(i), updates=i, samples=i,
            accuracy=acc, loss=0.1,
        ))
    return trace


class TestChartIntegration:
    def test_chart_included_by_default(self):
        traces = {"a": make_trace([0.0, 0.2, 0.5])}
        out = render_tta_curves(traces)
        # The chart's axis gutter + legend marker are present.
        assert " |" in out
        assert "* A (4 GPUs)" in out

    def test_chart_suppressed(self):
        traces = {"a": make_trace([0.0, 0.2, 0.5])}
        out = render_tta_curves(traces, chart=False)
        assert " |" not in out

    def test_epoch_axis_labelled(self):
        traces = {"a": make_trace([0.0, 0.2])}
        out = render_tta_curves(traces, x="epochs")
        assert "epochs" in out

    def test_multiple_traces_share_canvas(self):
        traces = {
            "a": make_trace([0.0, 0.3], algorithm="A"),
            "b": make_trace([0.0, 0.6], algorithm="B", n=1),
        }
        out = render_tta_curves(traces)
        assert "A (4 GPUs)" in out and "B (1 GPU)" in out
