"""Tests for repro.telemetry.compare and repro.telemetry.promtext."""

import pytest

from repro.sim.environment import Environment
from repro.telemetry import Telemetry
from repro.telemetry.compare import (
    best_accuracy,
    compare_runs,
    time_to_accuracy,
)
from repro.telemetry.events import SpanEvent
from repro.telemetry.promtext import to_promtext, write_promtext
from repro.telemetry.trace_data import RunData, TraceData


def span(name, ts, dur, device=None, **args):
    return SpanEvent(name=name, ts=ts, dur=dur, run=0, device=device,
                     args=args)


def make_run(label, *, wall, step_s, merge_s=0.0, accuracy=(),
             updates=None):
    spans = [span("run", 0.0, wall),
             span("step.compute", 0.0, step_s, device=0, size=100)]
    if merge_s:
        spans.append(span("merge", step_s, merge_s))
    samples = {"accuracy": list(accuracy)}
    for device, value in (updates or {}).items():
        samples[f"gpu{device}/updates"] = [(wall, value)]
    return RunData(index=0, meta={"algorithm": label}, spans=spans,
                   samples=samples)


class TestAccuracyHelpers:
    def test_time_to_accuracy_first_crossing(self):
        run = make_run("a", wall=10.0, step_s=8.0,
                       accuracy=[(1.0, 0.3), (2.0, 0.8), (3.0, 0.9)])
        assert time_to_accuracy(run, 0.8) == 2.0
        assert time_to_accuracy(run, 0.95) is None

    def test_best_accuracy_ignores_nonfinite(self):
        run = make_run("a", wall=1.0, step_s=1.0,
                       accuracy=[(0.0, float("nan")), (1.0, 0.7)])
        assert best_accuracy(run) == 0.7
        assert best_accuracy(make_run("b", wall=1.0, step_s=1.0)) == 0.0


class TestCompareRuns:
    def test_tta_delta_and_speedup(self):
        baseline = make_run("base", wall=10.0, step_s=9.0,
                            accuracy=[(5.0, 0.8)])
        candidate = make_run("cand", wall=8.0, step_s=7.0,
                             accuracy=[(3.0, 0.85)])
        cmp = compare_runs(baseline, candidate)
        assert cmp.tta_target == pytest.approx(0.8)  # min of the two bests
        assert cmp.tta_delta_s == pytest.approx(-2.0)
        assert cmp.tta_speedup == pytest.approx(5.0 / 3.0)
        assert cmp.wall_speedup == pytest.approx(10.0 / 8.0)

    def test_explicit_target(self):
        baseline = make_run("base", wall=10.0, step_s=9.0,
                            accuracy=[(5.0, 0.9)])
        candidate = make_run("cand", wall=10.0, step_s=9.0,
                             accuracy=[(7.0, 0.9)])
        cmp = compare_runs(baseline, candidate, target=0.9)
        assert cmp.tta_target == 0.9
        assert cmp.tta_delta_s == pytest.approx(2.0)

    def test_unreached_target_gives_none_delta(self):
        baseline = make_run("base", wall=10.0, step_s=9.0,
                            accuracy=[(5.0, 0.8)])
        candidate = make_run("cand", wall=10.0, step_s=9.0,
                             accuracy=[(5.0, 0.5)])
        cmp = compare_runs(baseline, candidate, target=0.8)
        assert cmp.tta_candidate_s is None and cmp.tta_delta_s is None

    def test_phase_deltas_align_by_span_name(self):
        baseline = make_run("base", wall=10.0, step_s=9.0, merge_s=1.0)
        candidate = make_run("cand", wall=10.0, step_s=6.0)
        cmp = compare_runs(baseline, candidate)
        by_name = {p.name: p for p in cmp.phases}
        assert by_name["step.compute"].delta_s == pytest.approx(-3.0)
        assert by_name["step.compute"].speedup == pytest.approx(1.5)
        assert by_name["merge"].candidate_s == 0.0
        assert by_name["merge"].speedup is None

    def test_regression_beyond_noise(self):
        baseline = make_run("base", wall=10.0, step_s=5.0)
        candidate = make_run("cand", wall=10.0, step_s=5.6)
        cmp = compare_runs(baseline, candidate, noise=0.05)
        assert "step.compute" in cmp.regressions
        quiet = compare_runs(baseline,
                             make_run("c2", wall=10.0, step_s=5.2),
                             noise=0.05)
        assert quiet.regressions == []

    def test_update_totals(self):
        baseline = make_run("base", wall=10.0, step_s=5.0,
                            updates={0: 40.0, 1: 60.0})
        candidate = make_run("cand", wall=10.0, step_s=5.0,
                             updates={0: 30.0})
        cmp = compare_runs(baseline, candidate)
        assert cmp.updates_baseline == 100.0
        assert cmp.updates_candidate == 30.0

    def test_as_dict_is_json_shaped(self):
        cmp = compare_runs(make_run("a", wall=1.0, step_s=1.0),
                           make_run("b", wall=2.0, step_s=2.0))
        d = cmp.as_dict()
        assert d["baseline"] == "a" and d["candidate"] == "b"
        assert isinstance(d["phases"], list)

    def test_zero_duration_candidate(self):
        cmp = compare_runs(make_run("a", wall=1.0, step_s=1.0),
                           RunData(index=0, meta={"algorithm": "empty"}))
        assert cmp.wall_speedup is None


class TestPromtext:
    @pytest.fixture
    def recorded(self):
        tel = Telemetry(label="prom")
        env = Environment()
        tel.attach(env, algorithm="alpha", n_devices=1)

        def proc():
            with tel.span("step.compute", device=0, size=4):
                yield env.timeout(1.0)
            tel.counter("updates", 2, device=0)
            tel.gauge("accuracy", 0.5)

        env.process(proc())
        env.run()
        tel.detach()
        return tel

    def test_exposition_format(self, recorded):
        text = to_promtext(TraceData.from_telemetry(recorded))
        lines = text.splitlines()
        assert any(line.startswith("# HELP repro_run_info") for line in lines)
        assert any(line.startswith("# TYPE repro_run_span_seconds gauge")
                   for line in lines)
        # Counters get the _total suffix and a counter TYPE.
        assert "# TYPE repro_updates_total counter" in lines
        sample = next(line for line in lines
                      if line.startswith("repro_updates_total{"))
        assert 'run="0"' in sample and 'device="0"' in sample
        assert sample.rstrip().endswith("2.0")

    def test_span_totals_exported(self, recorded):
        text = to_promtext(TraceData.from_telemetry(recorded))
        assert ('repro_span_seconds_total'
                '{run="0",span="step.compute",device="0"} 1.0') in text
        assert ('repro_span_count_total'
                '{run="0",span="step.compute",device="0"} 1.0') in text

    def test_idle_accounting_exported(self, recorded):
        text = to_promtext(TraceData.from_telemetry(recorded))
        assert "repro_device_busy_seconds_total" in text

    def test_every_line_is_well_formed(self, recorded):
        for line in to_promtext(TraceData.from_telemetry(recorded)).splitlines():
            assert line.startswith("#") or " " in line

    def test_write_promtext(self, recorded, tmp_path):
        path = write_promtext(TraceData.from_telemetry(recorded),
                              tmp_path / "metrics" / "run.prom")
        assert path.exists()
        assert "repro_run_info" in path.read_text()

    def test_empty_trace(self):
        text = to_promtext(TraceData(label="void"))
        assert isinstance(text, str)
