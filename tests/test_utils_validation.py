"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_finite_array,
    check_in_range,
    check_integer,
    check_nonnegative,
    check_one_of,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_nonnegative("x", -1e-9)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 3.0, 1.0, 2.0)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", float("nan"), 0.0, 1.0)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)


class TestCheckInteger:
    def test_accepts_int_and_numpy_int(self):
        assert check_integer("n", 3) == 3
        assert check_integer("n", np.int64(4)) == 4

    @pytest.mark.parametrize("bad", [3.0, "3", True, None])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(ConfigurationError):
            check_integer("n", bad)


class TestCheckOneOf:
    def test_accepts_member(self):
        assert check_one_of("mode", "a", ["a", "b"]) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="mode"):
            check_one_of("mode", "c", ["a", "b"])


class TestCheckFiniteArray:
    def test_accepts_finite(self):
        arr = np.ones(4)
        assert check_finite_array("a", arr) is arr

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_nonfinite(self, bad):
        arr = np.array([1.0, bad])
        with pytest.raises(ConfigurationError, match="non-finite"):
            check_finite_array("a", arr)
