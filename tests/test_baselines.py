"""Tests for the baseline trainers (elastic, sync/TF, CROSSBOW, async, minibatch)."""

import numpy as np
import pytest

from repro.baselines.async_sgd import AsyncSGDTrainer
from repro.baselines.crossbow import CrossbowTrainer
from repro.baselines.elastic import ElasticSGDTrainer
from repro.baselines.minibatch import MiniBatchSGDTrainer
from repro.baselines.sync_sgd import SyncSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams


def cfg(**kwargs):
    defaults = dict(b_max=64, base_lr=0.2, mega_batch_batches=16)
    defaults.update(kwargs)
    return AdaptiveSGDConfig(**defaults)


def fresh_server(n=4):
    return make_server(
        n, seed=5, cost_params=GpuCostParams.tiny_model_profile()
    )


def run(cls, micro_task, budget=0.04, n=4, **trainer_kwargs):
    trainer = cls(
        micro_task, fresh_server(n), cfg(), hidden=(32,), init_seed=7,
        data_seed=3, eval_samples=128, **trainer_kwargs,
    )
    return trainer.run(time_budget_s=budget)


ALL_TRAINERS = [
    ElasticSGDTrainer,
    SyncSGDTrainer,
    CrossbowTrainer,
    AsyncSGDTrainer,
    MiniBatchSGDTrainer,
]


@pytest.mark.parametrize("cls", ALL_TRAINERS)
class TestCommonBehaviour:
    def test_produces_monotone_time_trace(self, cls, micro_task):
        trace = run(cls, micro_task)
        assert len(trace) >= 2
        times = [p.time_s for p in trace.points]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_learns(self, cls, micro_task):
        trace = run(cls, micro_task, budget=0.06)
        assert trace.best_accuracy > trace.points[0].accuracy + 0.1

    def test_deterministic(self, cls, micro_task):
        a = run(cls, micro_task, budget=0.02)
        b = run(cls, micro_task, budget=0.02)
        assert [p.accuracy for p in a.points] == [p.accuracy for p in b.points]
        assert [p.time_s for p in a.points] == [p.time_s for p in b.points]

    def test_epochs_progress(self, cls, micro_task):
        trace = run(cls, micro_task)
        assert trace.total_epochs > 0


class TestElastic:
    def test_label(self, micro_task):
        assert run(ElasticSGDTrainer, micro_task, budget=0.01).algorithm == "Elastic SGD"

    def test_static_batch_sizes(self, micro_task):
        trace = run(ElasticSGDTrainer, micro_task)
        for sizes in trace.batch_size_history:
            assert sizes == tuple([64] * 4)

    def test_never_perturbs(self, micro_task):
        trace = run(ElasticSGDTrainer, micro_task)
        assert not any(trace.perturbation_history)

    def test_straggler_barrier_slows_megabatches(self, micro_task):
        """On a heterogeneous server Elastic completes fewer epochs than on
        a uniform one in the same budget — the straggler cost."""
        het = ElasticSGDTrainer(
            micro_task, fresh_server(), cfg(), hidden=(32,), init_seed=7,
            data_seed=3, eval_samples=128,
        ).run(time_budget_s=0.04)
        uni_server = make_server(
            4, heterogeneity="uniform", seed=5,
            cost_params=GpuCostParams.tiny_model_profile(),
        )
        uni = ElasticSGDTrainer(
            micro_task, uni_server, cfg(), hidden=(32,), init_seed=7,
            data_seed=3, eval_samples=128,
        ).run(time_budget_s=0.04)
        assert uni.total_epochs > het.total_epochs


class TestSyncSGD:
    def test_label_is_tensorflow(self, micro_task):
        assert run(SyncSGDTrainer, micro_task, budget=0.01).algorithm == "TensorFlow"

    def test_updates_every_batch(self, micro_task):
        trace = run(SyncSGDTrainer, micro_task)
        last = trace.points[-1]
        # One global update per global batch of b_max samples.
        assert last.updates == pytest.approx(last.samples / 64, abs=1)

    def test_framework_overhead_slows_it(self, micro_task):
        fast = SyncSGDTrainer(
            micro_task, fresh_server(), cfg(), framework_overhead=1.0,
            hidden=(32,), init_seed=7, data_seed=3, eval_samples=128,
        ).run(time_budget_s=0.04)
        slow = SyncSGDTrainer(
            micro_task, fresh_server(), cfg(), framework_overhead=2.0,
            hidden=(32,), init_seed=7, data_seed=3, eval_samples=128,
        ).run(time_budget_s=0.04)
        assert fast.total_epochs > slow.total_epochs

    def test_invalid_overhead_rejected(self, micro_task):
        with pytest.raises(ValueError):
            SyncSGDTrainer(
                micro_task, fresh_server(), cfg(), framework_overhead=0.5,
                hidden=(32,),
            )

    def test_fewest_epochs_of_gpu_methods(self, micro_task):
        """The paper's trend: per-batch synchronization starves throughput."""
        tf = run(SyncSGDTrainer, micro_task)
        elastic = run(ElasticSGDTrainer, micro_task)
        assert tf.total_epochs < elastic.total_epochs


class TestCrossbow:
    def test_label(self, micro_task):
        assert run(CrossbowTrainer, micro_task, budget=0.01).algorithm == "CROSSBOW"

    def test_mu_zero_keeps_learners_apart(self, micro_task):
        # With no elastic force the central model never moves.
        trace = run(CrossbowTrainer, micro_task, elasticity=0.0, budget=0.02)
        assert trace.points[-1].accuracy == pytest.approx(
            trace.points[0].accuracy, abs=0.05
        )

    def test_invalid_elasticity_rejected(self, micro_task):
        with pytest.raises(Exception):
            CrossbowTrainer(
                micro_task, fresh_server(), cfg(), elasticity=2.0, hidden=(32,)
            )


class TestAsync:
    def test_label(self, micro_task):
        assert run(AsyncSGDTrainer, micro_task, budget=0.01).algorithm == "Async SGD"

    def test_no_barrier_more_updates_than_sync(self, micro_task):
        a = run(AsyncSGDTrainer, micro_task)
        s = run(SyncSGDTrainer, micro_task)
        assert a.points[-1].updates > s.points[-1].updates


class TestMiniBatch:
    def test_single_device(self, micro_task):
        trace = run(MiniBatchSGDTrainer, micro_task, n=1)
        assert trace.n_devices == 1

    def test_update_count_matches_batches(self, micro_task):
        trace = run(MiniBatchSGDTrainer, micro_task)
        last = trace.points[-1]
        assert last.updates == last.samples // 64
