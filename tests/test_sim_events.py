"""Tests for repro.sim.events — event lifecycle and composite conditions."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class TestEventLifecycle:
    def test_initial_state(self):
        env = Environment()
        event = env.event()
        assert not event.triggered and not event.processed

    def test_succeed_carries_value(self):
        env = Environment()
        event = env.event()
        event.succeed("payload")
        assert event.triggered
        env.run()
        assert event.processed
        assert event.value == "payload"

    def test_double_succeed_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_then_value_raises(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("boom"))
        env.run()
        with pytest.raises(ValueError, match="boom"):
            _ = event.value
        assert not event.ok

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not-an-exception")

    def test_callbacks_run_once(self):
        env = Environment()
        event = env.event()
        calls = []
        event.callbacks.append(lambda e: calls.append(e.value))
        event.succeed(7)
        env.run()
        assert calls == [7]


class TestTimeout:
    def test_fires_at_delay(self):
        env = Environment()
        Timeout(env, 2.5)
        env.run()
        assert env.now == 2.5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_allowed(self):
        env = Environment()
        env.timeout(0.0)
        env.run()
        assert env.now == 0.0

    def test_value_passthrough(self):
        env = Environment()
        received = []

        def proc():
            received.append((yield env.timeout(1, "tick")))

        env.process(proc())
        env.run()
        assert received == ["tick"]


class TestAllOf:
    def test_waits_for_all(self):
        env = Environment()
        results = []

        def proc():
            vals = yield env.all_of([env.timeout(1, "a"), env.timeout(3, "b")])
            results.append((env.now, vals))

        env.process(proc())
        env.run()
        assert results == [(3.0, ["a", "b"])]

    def test_empty_fires_immediately(self):
        env = Environment()
        results = []

        def proc():
            vals = yield env.all_of([])
            results.append(vals)

        env.process(proc())
        env.run()
        assert results == [[]]

    def test_already_processed_children(self):
        env = Environment()
        t = env.timeout(1, "x")
        env.run()

        def proc():
            vals = yield env.all_of([t])
            return vals

        p = env.process(proc())
        env.run()
        assert p.value == ["x"]

    def test_child_failure_propagates(self):
        env = Environment()
        bad = env.event()
        bad.fail(RuntimeError("child died"))
        seen = []

        def proc():
            try:
                yield env.all_of([env.timeout(1), bad])
            except RuntimeError as exc:
                seen.append(str(exc))

        env.process(proc())
        env.run()
        assert seen == ["child died"]

    def test_cross_environment_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [env2.event()])


class TestAnyOf:
    def test_first_wins_with_index(self):
        env = Environment()

        def proc():
            idx, val = yield env.any_of(
                [env.timeout(5, "slow"), env.timeout(2, "fast")]
            )
            return (env.now, idx, val)

        p = env.process(proc())
        env.run()
        assert p.value == (2.0, 1, "fast")

    def test_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_already_fired_child_resolves_immediately(self):
        env = Environment()
        t = env.timeout(1, "done")
        env.run()

        def proc():
            idx, val = yield env.any_of([env.timeout(100), t])
            return (env.now, idx, val)

        p = env.process(proc())
        env.run_until_complete(p)
        assert p.value == (1.0, 1, "done")
