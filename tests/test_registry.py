"""Tests for repro.registry: schema migrations, indexing, baselines, gc."""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, DataFormatError
from repro.harness.traces import TracePoint, TrainingTrace
from repro.registry import (
    BASELINE_WINDOW,
    RunRegistry,
    SCHEMA_VERSION,
    default_registry,
    flatten_metrics,
    history_baseline,
    new_run_id,
    record_bench_run,
    record_train_run,
)
from repro.registry.index import DB_NAME, _create_v1


def put(
    registry,
    run_id,
    *,
    kind="bench",
    status="green",
    tags=(),
    metrics=None,
    created_s=0.0,
):
    """Register a minimal run row for index-level tests."""
    registry.register(
        {"run_id": run_id, "kind": kind, "created_s": created_s},
        metrics or {},
        status=status,
        tags=tags,
    )


class TestSchema:
    def test_fresh_registry_at_current_version(self, tmp_path):
        registry = RunRegistry(tmp_path)
        assert registry.schema_version() == SCHEMA_VERSION
        assert (tmp_path / DB_NAME).exists()

    def test_empty_db_file_migrates(self, tmp_path):
        # A zero-table database (user_version 0) upgrades on open.
        sqlite3.connect(tmp_path / DB_NAME).close()
        registry = RunRegistry(tmp_path)
        assert registry.schema_version() == SCHEMA_VERSION
        put(registry, "bench-x")
        assert registry.get("bench-x").status == "green"

    def test_v1_db_migrates_in_place(self, tmp_path):
        # Build a v1 index (no status column, no tags table) with one row,
        # then reopen: the row must survive with status defaulted to green
        # and the tags table available.
        conn = sqlite3.connect(tmp_path / DB_NAME)
        _create_v1(conn)
        conn.execute(
            "INSERT INTO runs (run_id, kind, created_s) VALUES (?, ?, ?)",
            ("train-old", "train", 1.0),
        )
        conn.execute(
            "INSERT INTO metrics (run_id, name, value) VALUES (?, ?, ?)",
            ("train-old", "duration_s", 2.5),
        )
        conn.execute("PRAGMA user_version = 1")
        conn.commit()
        conn.close()

        registry = RunRegistry(tmp_path)
        assert registry.schema_version() == SCHEMA_VERSION
        record = registry.get("train-old")
        assert record.status == "green"
        assert record.metrics == {"duration_s": 2.5}
        registry.add_tags("train-old", ["pinned"])
        assert registry.get("train-old").tags == ("pinned",)

    def test_newer_schema_rejected(self, tmp_path):
        RunRegistry(tmp_path)
        conn = sqlite3.connect(tmp_path / DB_NAME)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(DataFormatError, match="newer"):
            RunRegistry(tmp_path)

    def test_missing_registry_rejected_without_create(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no run registry"):
            RunRegistry(tmp_path / "nowhere", create=False)

    def test_default_registry_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        assert default_registry(None) is None
        # The fallback root is relative to cwd; point cwd at tmp first.
        monkeypatch.chdir(tmp_path)
        fell_back = default_registry(None, fallback=True)
        assert fell_back is not None
        assert fell_back.root == Path(".repro-runs")
        monkeypatch.setenv("REPRO_REGISTRY", str(tmp_path / "env-reg"))
        via_env = default_registry(None)
        assert via_env is not None and via_env.root == tmp_path / "env-reg"


class TestRegister:
    def test_round_trip(self, tmp_path):
        registry = RunRegistry(tmp_path)
        manifest = {
            "run_id": "train-a",
            "kind": "train",
            "algorithm": "Adaptive SGD",
            "dataset": "micro",
            "n_devices": 4,
            "seed": 7,
            "created_s": 3.0,
            "sim_duration_s": 1.5,
            "git_commit": "abc123",
            "git_dirty": True,
            "spec": {"b_max": 64},
        }
        registry.register(
            manifest, {"duration_s": 1.5}, tags=["exp", "baseline"]
        )
        record = registry.get("train-a")
        assert record.algorithm == "Adaptive SGD"
        assert record.n_devices == 4 and record.seed == 7
        assert record.git_dirty is True
        assert record.tags == ("baseline", "exp")
        assert record.metrics == {"duration_s": 1.5}
        assert record.manifest["spec"] == {"b_max": 64}
        assert record.as_dict()["tags"] == ["baseline", "exp"]

    def test_requires_run_id_and_kind(self, tmp_path):
        registry = RunRegistry(tmp_path)
        with pytest.raises(ConfigurationError):
            registry.register({"kind": "train"})
        with pytest.raises(ConfigurationError):
            registry.register({"run_id": "x"})

    def test_bad_status_rejected(self, tmp_path):
        registry = RunRegistry(tmp_path)
        with pytest.raises(ConfigurationError, match="status"):
            put(registry, "bench-x", status="amber")

    def test_non_finite_metric_rejected(self, tmp_path):
        registry = RunRegistry(tmp_path)
        with pytest.raises(DataFormatError, match="non-finite"):
            put(registry, "bench-x", metrics={"speedup": float("nan")})
        assert not registry.contains("bench-x")

    def test_reregister_replaces_atomically(self, tmp_path):
        # Last writer wins: the second registration's metrics and tags
        # fully replace the first's — no stale leftovers.
        registry = RunRegistry(tmp_path)
        put(registry, "bench-x", metrics={"old": 1.0}, tags=["first"])
        put(registry, "bench-x", metrics={"new": 2.0}, tags=["second"])
        record = registry.get("bench-x")
        assert record.metrics == {"new": 2.0}
        assert record.tags == ("second",)

    def test_concurrent_register_same_run_id(self, tmp_path):
        # Two processes registering the same run_id concurrently must leave
        # the index in one writer's complete state, never an interleaving.
        RunRegistry(tmp_path)  # settle the schema first
        script = (
            "import sys\n"
            "from repro.registry import RunRegistry\n"
            "root, run_id, name = sys.argv[1:4]\n"
            "reg = RunRegistry(root)\n"
            "for _ in range(5):\n"
            "    reg.register(\n"
            "        {'run_id': run_id, 'kind': 'bench'},\n"
            "        {name: 1.0, name + '_twin': 2.0},\n"
            "        tags=['writer:' + name],\n"
            "    )\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = {**os.environ, "PYTHONPATH": src}
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), "bench-x", name],
                env=env,
            )
            for name in ("alpha", "beta")
        ]
        assert [p.wait(timeout=120) for p in procs] == [0, 0]
        record = RunRegistry(tmp_path).get("bench-x")
        assert set(record.metrics) in (
            {"alpha", "alpha_twin"},
            {"beta", "beta_twin"},
        )
        winner = sorted(record.metrics)[0]
        assert record.tags == (f"writer:{winner}",)

    def test_set_status_and_unknown_run(self, tmp_path):
        registry = RunRegistry(tmp_path)
        put(registry, "bench-x")
        registry.set_status("bench-x", "red")
        assert registry.get("bench-x").status == "red"
        with pytest.raises(ConfigurationError):
            registry.set_status("ghost", "red")
        with pytest.raises(ConfigurationError):
            registry.get("ghost")


class TestQueries:
    def test_list_newest_first_with_filters(self, tmp_path):
        registry = RunRegistry(tmp_path)
        put(registry, "train-1", kind="train", created_s=1.0)
        put(registry, "bench-2", kind="bench", created_s=2.0, tags=["bench:h"])
        put(registry, "train-3", kind="train", created_s=3.0, status="red")
        assert [r.run_id for r in registry.list()] == [
            "train-3", "bench-2", "train-1",
        ]
        assert [r.run_id for r in registry.list(kind="train")] == [
            "train-3", "train-1",
        ]
        assert [r.run_id for r in registry.list(status="green")] == [
            "bench-2", "train-1",
        ]
        assert [r.run_id for r in registry.list(tag="bench:h")] == ["bench-2"]
        assert [r.run_id for r in registry.list(limit=1)] == ["train-3"]

    def test_metric_history_chronological_and_green_only(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for i in range(4):
            put(
                registry,
                f"bench-{i}",
                created_s=float(i),
                metrics={"speedup": float(i + 1)},
                status="red" if i == 2 else "green",
            )
        history = registry.metric_history("speedup")
        assert history == [("bench-0", 1.0), ("bench-1", 2.0), ("bench-3", 4.0)]
        # limit keeps the newest entries but still returns oldest-first.
        assert registry.metric_history("speedup", limit=2) == [
            ("bench-1", 2.0), ("bench-3", 4.0),
        ]
        assert registry.metric_names() == ["speedup"]


class TestBaseline:
    def test_no_registry_falls_back(self):
        resolved = history_baseline(None, "speedup", fallback=3.0)
        assert resolved.value == 3.0 and resolved.source == "fallback"
        assert "fallback" in resolved.describe()

    def test_below_min_runs_falls_back(self, tmp_path):
        registry = RunRegistry(tmp_path)
        put(registry, "bench-0", metrics={"speedup": 9.0}, tags=["bench:h"])
        resolved = history_baseline(
            registry, "speedup", bench="h", fallback=3.0
        )
        assert resolved.source == "fallback" and resolved.value == 3.0

    def test_median_of_window(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for i, value in enumerate([10.0, 1.0, 2.0, 3.0]):
            put(
                registry,
                f"bench-{i}",
                created_s=float(i),
                metrics={"speedup": value},
                tags=["bench:h"],
            )
        resolved = history_baseline(
            registry, "speedup", bench="h", window=3, fallback=99.0
        )
        # Window keeps the newest 3 (1, 2, 3); median is 2, and the oldest
        # run (value 10) never enters.
        assert resolved.source == "history"
        assert resolved.value == 2.0
        assert resolved.n == 3
        assert resolved.run_ids == ("bench-1", "bench-2", "bench-3")
        assert "median of 3 green run(s)" in resolved.describe()

    def test_red_runs_never_contribute(self, tmp_path):
        registry = RunRegistry(tmp_path)
        put(registry, "bench-0", metrics={"speedup": 5.0}, tags=["bench:h"],
            created_s=0.0)
        put(registry, "bench-1", metrics={"speedup": 0.1}, tags=["bench:h"],
            created_s=1.0, status="red")
        resolved = history_baseline(
            registry, "speedup", bench="h", min_runs=1, fallback=None
        )
        assert resolved.value == 5.0 and resolved.n == 1


class TestGc:
    def test_keeps_newest_per_kind(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for i in range(4):
            put(registry, f"train-{i}", kind="train", created_s=float(i))
        doomed = registry.gc(keep=2, dry_run=True)
        assert doomed == ["train-0", "train-1"]
        assert registry.contains("train-0")  # dry run deletes nothing
        assert registry.gc(keep=2) == ["train-0", "train-1"]
        assert not registry.contains("train-0")
        assert registry.contains("train-2") and registry.contains("train-3")

    def test_never_deletes_protected_or_baseline_window(self, tmp_path):
        registry = RunRegistry(tmp_path)
        put(registry, "train-pin", kind="train", created_s=0.0,
            tags=["pinned"])
        put(registry, "train-base", kind="train", created_s=1.0,
            tags=["baseline"])
        for i in range(BASELINE_WINDOW + 2):
            put(registry, f"bench-{i}", created_s=float(i),
                metrics={"speedup": 1.0}, tags=["bench:h"])
        doomed = registry.gc(keep=0)
        # Protected tags survive unconditionally; the newest
        # BASELINE_WINDOW greens of every bench tag survive too.
        assert "train-pin" not in doomed and "train-base" not in doomed
        survivors = {r.run_id for r in registry.list()}
        assert {"train-pin", "train-base"} <= survivors
        assert {
            f"bench-{i}" for i in range(2, BASELINE_WINDOW + 2)
        } <= survivors
        assert doomed == ["bench-0", "bench-1"]

    def test_keeps_shared_trace_archive_owner(self, tmp_path):
        # Multi-mode serve registrations archive one telemetry file into
        # the *first* sibling's directory; gc must not delete that owner
        # while a newer sibling's trace_path still points into it.
        registry = RunRegistry(tmp_path)
        archive = registry.run_dir("serve-0") / "telemetry.jsonl"
        archive.parent.mkdir(parents=True)
        archive.write_text("")
        rel = "runs/serve-0/telemetry.jsonl"
        registry.register({"run_id": "serve-0", "kind": "serve",
                           "created_s": 0.0, "trace_path": rel})
        registry.register({"run_id": "serve-1", "kind": "serve",
                           "created_s": 1.0, "trace_path": rel})
        assert registry.gc(keep=1) == []
        assert registry.contains("serve-0") and archive.exists()
        assert registry.resolve_trace("serve-1").exists()
        # Once the referencing sibling is gone the owner is collectable.
        registry.gc(keep=0)
        assert not registry.contains("serve-0")
        assert not archive.exists()

    def test_protects_metric_history_per_metric(self, tmp_path):
        # Section-filtered bench invocations index only their section's
        # metrics, so the runs carrying another metric's history can be
        # older than the tag's newest window — they must survive too, or
        # that gate's baseline silently shifts.
        registry = RunRegistry(tmp_path)
        for i in range(2):
            put(registry, f"bench-{i}", created_s=float(i),
                metrics={"scatter": 1.0, "gather": 1.0}, tags=["bench:h"])
        for i in range(2, 2 + BASELINE_WINDOW):
            put(registry, f"bench-{i}", created_s=float(i),
                metrics={"gather": 1.0}, tags=["bench:h"])
        assert registry.gc(keep=0) == []
        history = registry.metric_history("scatter", tag="bench:h")
        assert [run_id for run_id, _ in history] == ["bench-0", "bench-1"]

    def test_removes_run_directories(self, tmp_path):
        registry = RunRegistry(tmp_path)
        put(registry, "train-0", kind="train", created_s=0.0)
        put(registry, "train-1", kind="train", created_s=1.0)
        old_dir = registry.run_dir("train-0")
        old_dir.mkdir(parents=True)
        (old_dir / "manifest.json").write_text("{}")
        registry.gc(keep=1)
        assert not old_dir.exists()

    def test_negative_keep_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunRegistry(tmp_path).gc(keep=-1)


def make_trace(accs, algorithm="Adaptive SGD", dataset="micro"):
    trace = TrainingTrace(algorithm=algorithm, dataset=dataset, n_devices=2)
    for i, acc in enumerate(accs):
        trace.record_point(TracePoint(
            time_s=float(i), epochs=float(i), updates=i * 10,
            samples=i * 100, accuracy=acc, loss=1.0 / (i + 1),
        ))
    trace.metadata = {"init_seed": 3}
    return trace


class TestRecord:
    def test_new_run_id_shape_and_uniqueness(self):
        ids = {new_run_id("train", dataset="micro") for _ in range(50)}
        assert len(ids) == 50
        assert all(i.startswith("train-") for i in ids)

    def test_flatten_metrics(self):
        flat = flatten_metrics({
            "sections": {"gather": {"speedup": 2.0, "ok": True}},
            "label": "xml",
            "series": [1, 2, 3],
            "bad": float("inf"),
            "n": 4,
        })
        assert flat == {
            "sections/gather/speedup": 2.0,
            "sections/gather/ok": 1.0,
            "n": 4.0,
        }

    def test_record_train_run_round_trip(self, tmp_path):
        registry = RunRegistry(tmp_path)
        run_id = record_train_run(
            registry, make_trace([0.1, 0.4, 0.6]), spec={"b_max": 64}
        )
        record = registry.get(run_id)
        assert record.kind == "train"
        assert record.algorithm == "Adaptive SGD"
        assert record.dataset == "micro"
        assert record.seed == 3
        assert record.metrics["best_accuracy"] == pytest.approx(0.6)
        assert record.metrics["duration_s"] == pytest.approx(2.0)
        assert record.manifest["spec"] == {"b_max": 64}

        run_dir = registry.run_dir(run_id)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["run_id"] == run_id
        report = json.loads((run_dir / "report.json").read_text())
        assert report["metrics"]["final_accuracy"] == pytest.approx(0.6)
        lines = (run_dir / "metrics.jsonl").read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[-1])["accuracy"] == pytest.approx(0.6)
        assert registry.metric_history("duration_s", kind="train") == [
            (run_id, 2.0)
        ]

    def test_record_bench_run_tags_and_status(self, tmp_path):
        registry = RunRegistry(tmp_path)
        run_id = record_bench_run(
            registry,
            "hotpath",
            {"sections": {"gather": {"speedup": 2.0}}},
            status="red",
        )
        record = registry.get(run_id)
        assert record.kind == "bench"
        assert record.status == "red"
        assert "bench:hotpath" in record.tags
        assert record.metrics == {"sections/gather/speedup": 2.0}
        report = json.loads(
            (registry.run_dir(run_id) / "report.json").read_text()
        )
        assert report["results"]["sections"]["gather"]["speedup"] == 2.0
