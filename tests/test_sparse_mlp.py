"""Tests for repro.sparse.mlp — architecture, forward/backward, training."""

import numpy as np
import pytest

from repro.data.batching import BatchCursor
from repro.exceptions import ConfigurationError
from repro.sparse.init import initialize
from repro.sparse.metrics import top1_accuracy
from repro.sparse.mlp import MLPArchitecture, SparseMLP
from repro.sparse.model_state import ModelState
from repro.sparse.optimizer import sgd_step


class TestArchitecture:
    def test_layer_dims(self):
        arch = MLPArchitecture(100, 50, hidden=(16, 8))
        assert arch.layer_dims == [100, 16, 8, 50]

    def test_parameter_spec(self):
        arch = MLPArchitecture(10, 5, hidden=(4,))
        spec = arch.parameter_spec()
        assert spec == [
            ("W1", (10, 4)), ("b1", (4,)), ("W2", (4, 5)), ("b2", (5,)),
        ]

    def test_n_params(self):
        arch = MLPArchitecture(10, 5, hidden=(4,))
        assert arch.n_params == 10 * 4 + 4 + 4 * 5 + 5

    @pytest.mark.parametrize("bad", [(0, 5, (4,)), (10, 0, (4,)), (10, 5, ()), (10, 5, (0,))])
    def test_invalid_dims_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            MLPArchitecture(bad[0], bad[1], hidden=bad[2])


@pytest.fixture()
def mlp_and_batch(micro_task):
    arch = MLPArchitecture(
        micro_task.n_features, micro_task.n_labels, hidden=(32,)
    )
    mlp = SparseMLP(arch)
    batch = BatchCursor(micro_task.train, seed=4).next_batch(16)
    return mlp, batch


class TestForward:
    def test_shapes(self, mlp_and_batch):
        mlp, batch = mlp_and_batch
        state = mlp.init_state(seed=0)
        cache = mlp.forward(batch.X, state)
        assert cache.logits.shape == (16, mlp.arch.n_labels)
        assert cache.activations[0].shape == (16, 32)

    def test_hidden_nonnegative(self, mlp_and_batch):
        mlp, batch = mlp_and_batch
        cache = mlp.forward(batch.X, mlp.init_state(seed=0))
        assert (cache.activations[0] >= 0).all()  # post-ReLU

    def test_wrong_feature_dim_rejected(self, mlp_and_batch, micro_task):
        mlp, batch = mlp_and_batch
        with pytest.raises(ConfigurationError):
            mlp.forward(batch.X[:, :10], mlp.init_state(seed=0))

    def test_predict_equals_forward_logits(self, mlp_and_batch):
        mlp, batch = mlp_and_batch
        state = mlp.init_state(seed=0)
        assert np.array_equal(
            mlp.predict(batch.X, state), mlp.forward(batch.X, state).logits
        )

    def test_evaluate_chunks_match_single_shot(self, mlp_and_batch, micro_task):
        mlp, _ = mlp_and_batch
        state = mlp.init_state(seed=0)
        full = mlp.evaluate(micro_task.test.X, micro_task.test.Y, state, chunk=10_000)
        chunked = mlp.evaluate(micro_task.test.X, micro_task.test.Y, state, chunk=17)
        assert np.allclose(full, chunked, atol=1e-5)


class TestPredictBatched:
    def test_bit_identical_to_predict(self, mlp_and_batch, micro_task):
        """Chunking must not change a single bit: each chunk runs the same
        kernels on the same rows as the single-shot path."""
        mlp, _ = mlp_and_batch
        state = mlp.init_state(seed=0)
        X = micro_task.test.X[:40]
        whole = mlp.predict(X, state)
        for chunk in (1, 7, 39, 40, 41, 4096):
            assert np.array_equal(
                mlp.predict_batched(X, state, chunk=chunk), whole
            )

    def test_chunk_boundary_exact_multiple(self, mlp_and_batch, micro_task):
        mlp, _ = mlp_and_batch
        state = mlp.init_state(seed=0)
        X = micro_task.test.X[:30]
        assert np.array_equal(
            mlp.predict_batched(X, state, chunk=10), mlp.predict(X, state)
        )

    def test_empty_batch(self, mlp_and_batch, micro_task):
        mlp, _ = mlp_and_batch
        state = mlp.init_state(seed=0)
        out = mlp.predict_batched(micro_task.test.X[:0], state)
        assert out.shape == (0, mlp.arch.n_labels)

    def test_bad_chunk_rejected(self, mlp_and_batch, micro_task):
        mlp, _ = mlp_and_batch
        state = mlp.init_state(seed=0)
        with pytest.raises(ConfigurationError):
            mlp.predict_batched(micro_task.test.X[:4], state, chunk=0)

    def test_workspace_reuse_matches_fresh(self, mlp_and_batch, micro_task):
        from repro.perf.workspace import Workspace

        mlp, _ = mlp_and_batch
        state = mlp.init_state(seed=0)
        X = micro_task.test.X[:25]
        ws = Workspace()
        first = np.array(
            mlp.predict_batched(X, state, chunk=8, workspace=ws), copy=True
        )
        second = mlp.predict_batched(X, state, chunk=8, workspace=ws)
        assert np.array_equal(first, second)
        assert np.array_equal(first, mlp.predict(X, state))


class TestBackward:
    def test_gradient_check(self, mlp_and_batch):
        """Analytic gradient vs central finite differences at random coords."""
        mlp, batch = mlp_and_batch
        state = mlp.init_state(seed=1)
        _, grad = mlp.loss_and_grad(batch, state)
        rng = np.random.default_rng(0)
        eps = 1e-3
        for _ in range(12):
            i = int(rng.integers(state.n_params))
            old = state.vector[i]
            state.vector[i] = old + eps
            lp, _ = mlp.loss_and_grad(batch, state)
            state.vector[i] = old - eps
            lm, _ = mlp.loss_and_grad(batch, state)
            state.vector[i] = old
            fd = (lp - lm) / (2 * eps)
            assert grad.vector[i] == pytest.approx(fd, abs=5e-3)

    def test_gradient_check_two_hidden_layers(self, micro_task):
        arch = MLPArchitecture(
            micro_task.n_features, micro_task.n_labels, hidden=(16, 12)
        )
        mlp = SparseMLP(arch)
        batch = BatchCursor(micro_task.train, seed=4).next_batch(8)
        state = mlp.init_state(seed=1)
        _, grad = mlp.loss_and_grad(batch, state)
        rng = np.random.default_rng(1)
        eps = 1e-3
        for _ in range(12):
            i = int(rng.integers(state.n_params))
            old = state.vector[i]
            state.vector[i] = old + eps
            lp, _ = mlp.loss_and_grad(batch, state)
            state.vector[i] = old - eps
            lm, _ = mlp.loss_and_grad(batch, state)
            state.vector[i] = old
            fd = (lp - lm) / (2 * eps)
            assert grad.vector[i] == pytest.approx(fd, abs=5e-3)

    def test_grad_out_buffer_reused(self, mlp_and_batch):
        mlp, batch = mlp_and_batch
        state = mlp.init_state(seed=1)
        buffer = mlp.zeros_state()
        _, grad = mlp.loss_and_grad(batch, state, grad_out=buffer)
        assert grad is buffer

    def test_gradient_deterministic(self, mlp_and_batch):
        mlp, batch = mlp_and_batch
        state = mlp.init_state(seed=1)
        _, g1 = mlp.loss_and_grad(batch, state)
        _, g2 = mlp.loss_and_grad(batch, state)
        assert np.array_equal(g1.vector, g2.vector)


class TestTraining:
    def test_sgd_reduces_loss_and_learns(self, micro_task):
        arch = MLPArchitecture(
            micro_task.n_features, micro_task.n_labels, hidden=(32,)
        )
        mlp = SparseMLP(arch)
        state = mlp.init_state(seed=2)
        cursor = BatchCursor(micro_task.train, seed=3)
        first_loss = None
        grad = mlp.zeros_state()
        for _ in range(150):
            batch = cursor.next_batch(64)
            loss, grad = mlp.loss_and_grad(batch, state, grad_out=grad)
            if first_loss is None:
                first_loss = loss
            sgd_step(state, grad, lr=0.5)
        assert loss < first_loss * 0.8
        scores = mlp.evaluate(micro_task.test.X, micro_task.test.Y, state)
        assert top1_accuracy(scores, micro_task.test.Y) > 0.3


class TestInit:
    def test_same_seed_identical(self):
        arch = MLPArchitecture(20, 10, hidden=(8,))
        a = SparseMLP(arch).init_state(seed=5)
        b = SparseMLP(arch).init_state(seed=5)
        assert np.array_equal(a.vector, b.vector)

    def test_biases_zero(self):
        state = SparseMLP(MLPArchitecture(20, 10, hidden=(8,))).init_state(seed=0)
        assert np.all(state["b1"] == 0) and np.all(state["b2"] == 0)

    def test_fan_in_scaling(self):
        arch = MLPArchitecture(1000, 10, hidden=(500,))
        state = SparseMLP(arch).init_state(seed=0)
        assert state["W1"].std() == pytest.approx(1 / np.sqrt(1000), rel=0.1)
        assert state["W2"].std() == pytest.approx(1 / np.sqrt(500), rel=0.1)

    def test_he_scheme(self):
        arch = MLPArchitecture(1000, 10, hidden=(500,))
        state = initialize(
            SparseMLP(arch).zeros_state(), seed=0, scheme="he"
        )
        assert state["W1"].std() == pytest.approx(np.sqrt(2 / 1000), rel=0.1)

    def test_paper_literal_scheme_exists(self):
        arch = MLPArchitecture(100, 10, hidden=(50,))
        state = initialize(
            SparseMLP(arch).zeros_state(), seed=0, scheme="paper_literal"
        )
        # Literal reading: std equals the unit count — enormous weights.
        assert state["W1"].std() > 10.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            initialize(ModelState.build([("W1", (4, 4))]), scheme="bogus")
