"""Workspace arena + out-param kernels: bit-for-bit vs the allocating path."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.batching import Batch
from repro.perf.workspace import Workspace, spmm_into, spmm_t_into
from repro.sparse.mlp import MLPArchitecture, SparseMLP


def make_inputs(n=48, f=300, L=40, density=0.04, seed=0):
    rng = np.random.default_rng(seed)
    X = sp.random(
        n, f, density=density, format="csr", dtype=np.float32,
        random_state=rng,
    )
    X.sum_duplicates()
    X.sort_indices()
    rows = np.repeat(np.arange(n), 2)
    cols = rng.integers(0, L, size=2 * n)
    Y = sp.csr_matrix((np.ones(2 * n, np.float32), (rows, cols)), shape=(n, L))
    Y.sum_duplicates()
    Y.data[:] = 1.0
    return X, Y


class TestSpmmKernels:
    def test_spmm_into_matches_scipy(self):
        X, _ = make_inputs()
        W = np.random.default_rng(1).normal(size=(300, 64)).astype(np.float32)
        out = np.full((48, 64), 7.0, dtype=np.float32)  # stale contents
        spmm_into(X, W, out)
        assert np.array_equal(out, X @ W)

    def test_spmm_t_into_matches_scipy(self):
        X, _ = make_inputs(seed=2)
        delta = np.random.default_rng(3).normal(size=(48, 64)).astype(np.float32)
        out = np.full((300, 64), -3.0, dtype=np.float32)
        spmm_t_into(X, delta, out)
        want = (X.T @ delta).astype(np.float32, copy=False)
        assert np.array_equal(out, want)

    def test_empty_matrix(self):
        X = sp.csr_matrix((5, 20), dtype=np.float32)
        W = np.ones((20, 4), dtype=np.float32)
        out = np.ones((5, 4), dtype=np.float32)
        spmm_into(X, W, out)
        assert np.array_equal(out, np.zeros((5, 4), dtype=np.float32))


class TestWorkspace:
    def test_same_tag_same_bucket_reuses_memory(self):
        ws = Workspace()
        a = ws.buffer("t", 100, 16)
        b = ws.buffer("t", 100, 16)
        assert a.base is b.base if a.base is not None else a is b
        assert a.shape == (100, 16)
        assert a.flags.c_contiguous

    def test_smaller_request_shares_bucket(self):
        ws = Workspace()
        a = ws.buffer("t", 100, 16)
        b = ws.buffer("t", 90, 16)  # same power-of-two capacity bucket
        assert b.shape == (90, 16)
        assert ws.n_buffers == 1

    def test_distinct_tags_distinct_buffers(self):
        ws = Workspace()
        a = ws.buffer("a", 64, 8)
        b = ws.buffer("b", 64, 8)
        a[...] = 1.0
        b[...] = 2.0
        assert np.all(a == 1.0)

    def test_csc_cache_identity(self):
        X, _ = make_inputs(seed=4)
        ws = Workspace()
        t1 = ws.csc_transpose(X)
        t2 = ws.csc_transpose(X)
        assert t1 is t2


class TestWorkspaceRoutedMLP:
    @pytest.mark.parametrize("hidden", [(32,), (48, 24)])
    def test_forward_bit_for_bit(self, hidden):
        X, Y = make_inputs(seed=5)
        mlp = SparseMLP(MLPArchitecture(n_features=300, n_labels=40, hidden=hidden))
        state = mlp.init_state(seed=6)
        ws = Workspace()
        plain = mlp.forward(X, state)
        routed = mlp.forward(X, state, ws)
        for a, b in zip(plain.activations, routed.activations):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("hidden", [(32,), (48, 24)])
    def test_loss_and_grad_bit_for_bit(self, hidden):
        X, Y = make_inputs(seed=7)
        mlp = SparseMLP(MLPArchitecture(n_features=300, n_labels=40, hidden=hidden))
        state = mlp.init_state(seed=8)
        batch = Batch(X=X, Y=Y, indices=np.arange(X.shape[0]))
        ws = Workspace()
        loss0, grad0 = mlp.loss_and_grad(batch, state)
        loss1, grad1 = mlp.loss_and_grad(batch, state, workspace=ws)
        assert loss0 == loss1
        assert np.array_equal(grad0.vector, grad1.vector)

    def test_repeated_steps_stay_exact(self):
        """Buffer reuse across steps must not leak stale values."""
        mlp = SparseMLP(MLPArchitecture(n_features=300, n_labels=40, hidden=(32,)))
        state = mlp.init_state(seed=9)
        ws = Workspace()
        rng_seeds = [10, 11, 12, 13]
        for i, s in enumerate(rng_seeds):
            X, Y = make_inputs(n=24 + 8 * i, seed=s)  # varying batch sizes
            batch = Batch(X=X, Y=Y, indices=np.arange(X.shape[0]))
            loss0, grad0 = mlp.loss_and_grad(batch, state)
            loss1, grad1 = mlp.loss_and_grad(batch, state, workspace=ws)
            assert loss0 == loss1
            assert np.array_equal(grad0.vector, grad1.vector)

    def test_evaluate_with_workspace(self):
        X, Y = make_inputs(n=70, seed=14)
        mlp = SparseMLP(MLPArchitecture(n_features=300, n_labels=40, hidden=(32,)))
        state = mlp.init_state(seed=15)
        plain = mlp.evaluate(X, Y, state, chunk=32)
        routed = mlp.evaluate(X, Y, state, chunk=32, workspace=Workspace())
        assert np.array_equal(plain, routed)
