"""Chunked SLIDE kernel vs the per-sample reference at identical weights.

The kernel evaluates every sample's sampled-softmax gradient at the
chunk-start weights and applies them in one batched update. The reference
below does exactly that with the original per-sample numpy code, so the two
must agree to fp32 accumulation tolerance (different summation orders).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.slide.lsh import SimHashLSH
from repro.baselines.slide.sampler import ActiveLabelSampler
from repro.perf.slide_kernel import slide_chunk_step
from repro.perf.workspace import Workspace


def make_problem(chunk=32, F=150, H=24, L=80, seed=0, empty_row=None):
    rng = np.random.default_rng(seed)
    Xc = sp.random(
        chunk, F, density=0.08, format="csr", dtype=np.float32,
        random_state=rng,
    )
    if empty_row is not None:
        lil = Xc.tolil()
        lil[empty_row] = 0
        Xc = lil.tocsr()
    Xc.sum_duplicates()
    Xc.sort_indices()
    W1 = rng.normal(scale=0.2, size=(F, H)).astype(np.float32)
    b1 = rng.normal(scale=0.05, size=H).astype(np.float32)
    W2 = rng.normal(scale=0.2, size=(H, L)).astype(np.float32)
    b2 = rng.normal(scale=0.05, size=L).astype(np.float32)
    label_sets = [
        np.sort(rng.choice(L, size=rng.integers(1, 4), replace=False))
        for _ in range(chunk)
    ]
    return Xc, W1, b1, W2, b2, label_sets


def reference_chunk(Xc, H1, label_sets, actives, W1, b1, W2, b2, lr):
    """Per-sample reference: every gradient at chunk-start weights."""
    lr = np.float32(lr)
    W1_0, b1_0, W2_0, b2_0 = W1.copy(), b1.copy(), W2.copy(), b2.copy()
    dW1 = np.zeros_like(W1)
    db1 = np.zeros_like(b1)
    dW2 = np.zeros_like(W2)
    db2 = np.zeros_like(b2)
    loss_sum = 0.0
    for i, active in enumerate(actives):
        start, stop = Xc.indptr[i], Xc.indptr[i + 1]
        cols = Xc.indices[start:stop]
        vals = Xc.data[start:stop]
        h1 = H1[i]
        k = label_sets[i].size

        logits = h1 @ W2_0[:, active] + b2_0[active]
        logits = logits - logits.max()
        p = np.exp(logits)
        p /= p.sum()
        loss_sum += float(-np.log(np.maximum(p[:k], 1e-30)).mean())

        dlog = p.copy()
        dlog[:k] -= np.float32(1.0 / k)
        dh = W2_0[:, active] @ dlog
        dz1 = dh * (h1 > 0.0)
        np.add.at(dW2, (slice(None), active), np.outer(h1, dlog))
        np.add.at(db2, active, dlog)
        dW1[cols] += np.outer(vals, dz1)
        db1 += dz1
    W1 -= lr * dW1
    b1 -= lr * db1
    W2 -= lr * dW2
    b2 -= lr * db2
    return loss_sum


def run_both(chunk=32, seed=0, lr=0.01, empty_row=None, workspace=None):
    Xc, W1, b1, W2, b2, label_sets = make_problem(
        chunk=chunk, seed=seed, empty_row=empty_row
    )
    H1 = np.maximum(np.asarray(Xc @ W1) + b1, 0.0).astype(np.float32)

    lsh = SimHashLSH(W1.shape[1], n_tables=8, n_bits=5, seed=seed)
    lsh.rebuild(W2)
    sampler = ActiveLabelSampler(
        W2.shape[1], lsh, min_active=16, max_active=40, seed=seed
    )
    actives = sampler.sample_batch(H1, label_sets)
    label_counts = np.array([ls.size for ls in label_sets], dtype=np.int64)

    # Reference on copies, kernel on the originals.
    W1r, b1r, W2r, b2r = W1.copy(), b1.copy(), W2.copy(), b2.copy()
    loss_ref = reference_chunk(
        Xc, H1, label_sets, actives, W1r, b1r, W2r, b2r, lr
    )
    loss_ker = slide_chunk_step(
        Xc, H1.copy(), label_counts, actives, W1, b1, W2, b2, lr,
        workspace=workspace,
    )
    return (loss_ref, W1r, b1r, W2r, b2r), (loss_ker, W1, b1, W2, b2)


def assert_close(ref, ker):
    loss_ref, W1r, b1r, W2r, b2r = ref
    loss_ker, W1, b1, W2, b2 = ker
    assert loss_ker == pytest.approx(loss_ref, rel=1e-4)
    np.testing.assert_allclose(W1, W1r, rtol=1e-4, atol=1e-6)
    np.testing.assert_allclose(b1, b1r, rtol=1e-4, atol=1e-6)
    np.testing.assert_allclose(W2, W2r, rtol=1e-4, atol=1e-6)
    np.testing.assert_allclose(b2, b2r, rtol=1e-4, atol=1e-6)


class TestSlideChunkStep:
    def test_matches_per_sample_reference(self):
        ref, ker = run_both(chunk=32, seed=1)
        assert_close(ref, ker)

    def test_single_sample_chunk(self):
        ref, ker = run_both(chunk=1, seed=2)
        assert_close(ref, ker)

    def test_empty_feature_row(self):
        ref, ker = run_both(chunk=16, seed=3, empty_row=5)
        assert_close(ref, ker)

    def test_with_workspace(self):
        ref, ker = run_both(chunk=24, seed=4, workspace=Workspace())
        assert_close(ref, ker)

    def test_larger_lr_still_matches(self):
        ref, ker = run_both(chunk=32, seed=5, lr=0.05)
        assert_close(ref, ker)

    def test_sample_batch_matches_per_sample_sampling(self):
        """Batched active-set construction replays the per-sample RNG."""
        Xc, W1, b1, W2, b2, label_sets = make_problem(seed=6)
        H1 = np.maximum(np.asarray(Xc @ W1) + b1, 0.0).astype(np.float32)
        lsh = SimHashLSH(W1.shape[1], n_tables=8, n_bits=5, seed=6)
        lsh.rebuild(W2)
        batched = ActiveLabelSampler(
            W2.shape[1], lsh, min_active=16, max_active=40, seed=7
        ).sample_batch(H1, label_sets)
        singly = ActiveLabelSampler(
            W2.shape[1], lsh, min_active=16, max_active=40, seed=7
        )
        for i, ls in enumerate(label_sets):
            assert np.array_equal(batched[i], singly.sample(H1[i], ls))
