#!/usr/bin/env python
"""Fault injection: what happens when a GPU throttles mid-run?

The paper's heterogeneity is static-ish (slow-but-steady devices). This
study injects a *dynamic* fault — one GPU of an otherwise uniform server
loses 55% of its speed partway through training (thermal throttling /
noisy neighbor) — and compares how Adaptive SGD and Elastic SGD absorb it:

- **Elastic SGD** keeps assigning the victim the same batch count, so every
  mega-batch now waits for the throttled straggler;
- **Adaptive SGD**'s dynamic scheduling immediately routes more batches to
  the healthy GPUs, and Algorithm 1 shrinks the victim's batch size until
  update counts equalize again.

Run:  python examples/throttling_resilience.py [--budget 0.3]
"""

import argparse

from repro.baselines.elastic import ElasticSGDTrainer
from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.gpu.profiles import ThrottledProfile
from repro.harness.analysis import auc_accuracy
from repro.utils.tables import format_series, format_table

VICTIM = 2
FACTOR = 0.45


def build_server(throttle_at: float):
    server = make_server(
        4, heterogeneity="uniform", seed=3,
        cost_params=GpuCostParams.tiny_model_profile(),
    )
    server.gpus[VICTIM].profile = ThrottledProfile(
        server.gpus[VICTIM].profile, events=[(throttle_at, FACTOR)]
    )
    return server


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.3)
    parser.add_argument("--dataset", default="amazon670k-bench")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    from repro.data.registry import load_task

    task = load_task(args.dataset, seed=args.seed)
    cfg = AdaptiveSGDConfig(b_max=128, base_lr=2.0, mega_batch_batches=40)
    throttle_at = args.budget / 3

    print(f"GPU {VICTIM} loses {1 - FACTOR:.0%} of its speed at "
          f"t = {throttle_at:.3f}s (budget {args.budget}s)\n")

    traces = {}
    for cls in (AdaptiveSGDTrainer, ElasticSGDTrainer):
        trainer = cls(
            task, build_server(throttle_at), cfg, hidden=(64,),
            init_seed=args.seed, data_seed=args.seed, eval_samples=512,
        )
        trace = trainer.run(args.budget)
        traces[trace.algorithm] = trace

    adaptive = traces["Adaptive SGD"]
    print(format_series(
        {f"GPU {g}": adaptive.batch_size_series(g) for g in range(4)},
        title="Adaptive SGD — per-GPU batch size (watch the victim shrink)",
        xlabel="mega-batch", ylabel="batch size", max_points=14,
    ))

    print()
    rows = []
    for name, trace in traces.items():
        rows.append([
            name,
            trace.best_accuracy,
            trace.total_epochs,
            auc_accuracy(trace),
        ])
    print(format_table(
        ["method", "best acc", "epochs in budget", "avg acc over time"],
        rows, title="absorbing the fault",
    ))
    a, e = traces["Adaptive SGD"], traces["Elastic SGD"]
    print(f"\nAdaptive processed {a.total_epochs / e.total_epochs - 1:+.1%} "
          f"more data than Elastic under the same fault.")


if __name__ == "__main__":
    main()
