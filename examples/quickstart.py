#!/usr/bin/env python
"""Quickstart: train a sparse XML model with Adaptive SGD on 4 virtual GPUs.

This is the smallest end-to-end use of the library:

1. generate a synthetic XML task shaped like the paper's Amazon-670k;
2. build a heterogeneous 4-GPU virtual server (the paper's testbed);
3. train with Adaptive SGD for a fixed simulated time budget;
4. inspect the trace: accuracy curve, adaptive batch sizes, staleness.

Run:  python examples/quickstart.py [--budget 0.2] [--gpus 4]
"""

import argparse

from repro import AdaptiveSGDConfig, AdaptiveSGDTrainer, load_task, make_server
from repro.gpu.cost import GpuCostParams
from repro.utils.tables import format_kv, format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.2,
                        help="simulated seconds of training")
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--dataset", default="amazon670k-bench")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Generating {args.dataset} ...")
    task = load_task(args.dataset, seed=args.seed)
    print(format_kv(task.describe()))

    # The paper's testbed: heterogeneous same-model GPUs (gap up to 32%),
    # with the cost profile scaled to our benchmark-size models.
    server = make_server(
        args.gpus, seed=args.seed,
        cost_params=GpuCostParams.tiny_model_profile(),
    )
    print(f"\nGPU speed multipliers at t=0: "
          f"{[round(s, 3) for s in server.speeds_at(0.0)]}")

    config = AdaptiveSGDConfig(b_max=128, base_lr=0.4, mega_batch_batches=40)
    trainer = AdaptiveSGDTrainer(
        task, server, config, hidden=(64,), init_seed=args.seed,
        data_seed=args.seed, eval_samples=512,
    )
    print(f"\nTraining for {args.budget} simulated seconds ...")
    trace = trainer.run(args.budget)

    print(format_series(
        {trace.label(): trace.series("time", "accuracy")},
        title="\naccuracy vs simulated time",
        xlabel="sim s", ylabel="P@1", max_points=10,
    ))
    print(format_kv({
        "best top-1 accuracy": trace.best_accuracy,
        "epochs completed": trace.total_epochs,
        "mega-batches (merges)": len(trace.batch_size_history),
        "perturbation frequency": trace.perturbation_frequency(),
        "max replica staleness": max(trace.staleness_history, default=0),
        "final per-GPU batch sizes": str(trace.batch_size_history[-1]),
    }))
    for gpu in server.gpus:
        util = gpu.utilization(trace.total_time)
        print(f"{gpu.name}: {gpu.steps_executed} steps, "
              f"utilization {util:.0%}")


if __name__ == "__main__":
    main()
