#!/usr/bin/env python
"""Figure-4-style comparison: Adaptive SGD vs the paper's baselines.

Runs Adaptive SGD, Elastic SGD, TensorFlow-style synchronous SGD, and
CROSSBOW on one synthetic XML dataset under the paper's methodology (same
initial model, same simulated time budget, accuracy measured after every
mega-batch) and prints the accuracy curves plus a time-to-accuracy summary.

Run:  python examples/xml_benchmark.py [--dataset delicious200k-bench]
      [--budget 0.25] [--gpus 4]
"""

import argparse

from repro.core.config import AdaptiveSGDConfig
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.report import render_tta_curves, render_tta_summary
from repro.harness.tta import speedup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="amazon670k-bench")
    parser.add_argument("--budget", type=float, default=0.25)
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = ExperimentSpec(
        dataset=args.dataset,
        algorithms=("adaptive", "elastic", "tensorflow", "crossbow"),
        gpu_counts=(args.gpus,),
        time_budget_s=args.budget,
        config=AdaptiveSGDConfig(b_max=128, base_lr=0.4, mega_batch_batches=40),
        eval_samples=512,
        seed=args.seed,
    )
    print(f"Running 4 methods on {args.dataset} "
          f"({args.gpus} heterogeneous GPUs, {args.budget}s sim budget) ...")
    traces = run_experiment(spec)

    print()
    print(render_tta_curves(
        traces, title=f"Figure 4 (excerpt) — {args.dataset}", max_points=10,
    ))
    print()
    print(render_tta_summary(list(traces.values())))

    adaptive = traces[("adaptive", args.gpus)]
    elastic = traces[("elastic", args.gpus)]
    target = 0.8 * min(adaptive.best_accuracy, elastic.best_accuracy)
    ratio = speedup(elastic, adaptive, target)
    if ratio is not None:
        print(f"\nAdaptive reaches {target:.3f} accuracy "
              f"{ratio:.2f}x faster than Elastic SGD.")


if __name__ == "__main__":
    main()
