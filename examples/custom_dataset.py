#!/usr/bin/env python
"""Bring your own data: custom synthetic tasks and libSVM files.

Shows the data pipeline end to end:

1. design a custom synthetic XML task (your own dimensionalities, sparsity,
   and label skew) with :class:`SyntheticXMLConfig`;
2. write it to the multi-label libSVM format the Extreme Classification
   Repository uses (and the paper stores its training data in), read it
   back, and verify the round trip;
3. inspect Table-I-style statistics and the batch-nnz variance that drives
   the paper's second heterogeneity source;
4. train a quick model on it.

A real XMLRepository file (e.g. the actual Amazon-670k ``train.txt``) can be
loaded with the same ``read_libsvm`` call — header and all.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro.core.config import AdaptiveSGDConfig
from repro.baselines.minibatch import MiniBatchSGDTrainer
from repro.data.libsvm import read_libsvm, write_libsvm
from repro.data.stats import batch_nnz_profile, table1_row
from repro.data.synthetic import SyntheticXMLConfig, generate_xml_task
from repro.data.dataset import XMLTask
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams
from repro.utils.tables import format_kv


def main() -> None:
    # ---- 1. a custom task ---------------------------------------------------
    config = SyntheticXMLConfig(
        name="my-xml-task",
        n_features=2000,
        n_labels=800,
        n_train=4000,
        n_test=1000,
        avg_features_per_sample=40.0,
        avg_labels_per_sample=6.0,
        label_zipf=1.0,
        seed=42,
    )
    task = generate_xml_task(config)
    print(format_kv(table1_row(task)))

    # ---- 2. libSVM round trip ------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        train_path = Path(tmp) / "train.txt"
        write_libsvm(task.train, train_path)
        size_kb = train_path.stat().st_size / 1024
        print(f"\nwrote {train_path.name}: {size_kb:.0f} KiB "
              f"(multi-label libSVM, XMLRepository header)")
        reloaded = read_libsvm(train_path)
        assert reloaded.n_samples == task.train.n_samples
        assert (reloaded.Y != task.train.Y).nnz == 0
        print("read back: labels identical, values within float precision")
        task = XMLTask(train=reloaded, test=task.test, name=task.name)

    # ---- 3. sparsity diagnostics ---------------------------------------------
    profile = batch_nnz_profile(task.train, batch_size=128, seed=0)
    print("\nbatch-nnz variance at fixed batch size "
          "(the paper's second heterogeneity source):")
    print(format_kv({
        "batches": profile.n_batches,
        "mean nnz": profile.mean_nnz,
        "min nnz": profile.min_nnz,
        "max nnz": profile.max_nnz,
        "relative spread": f"{profile.relative_spread:.1%}",
    }))

    # ---- 4. quick training ---------------------------------------------------
    server = make_server(
        1, seed=0, cost_params=GpuCostParams.tiny_model_profile()
    )
    trainer = MiniBatchSGDTrainer(
        task, server,
        AdaptiveSGDConfig(b_max=128, base_lr=0.4, mega_batch_batches=10),
        hidden=(64,), init_seed=0, data_seed=0, eval_samples=500,
    )
    trace = trainer.run(0.1)
    print(f"\nmini-batch SGD on 1 virtual GPU: "
          f"accuracy {trace.points[0].accuracy:.3f} -> "
          f"{trace.best_accuracy:.3f} in {trace.total_epochs:.1f} epochs")


if __name__ == "__main__":
    main()
