#!/usr/bin/env python
"""Heterogeneity study: Figure 1 + Figure 6 in one script.

Part 1 reproduces Figure 1: the same training epoch timed on every GPU of
the virtual server, showing the fastest↔slowest gap, and how the gap reacts
to the configured base spread.

Part 2 reproduces Figure 6: one Adaptive SGD run on the heterogeneous
server, showing each GPU's batch size trajectory (6a) and the perturbation
activation frequency (6b), plus the replica-staleness telemetry that batch
size scaling is designed to eliminate.

Run:  python examples/heterogeneity_study.py [--budget 0.25]
"""

import argparse

from repro.core.staleness import staleness_bound
from repro.harness.figures import fig1_heterogeneity, fig6_adaptivity
from repro.harness.report import render_fig1, render_fig6
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.25)
    parser.add_argument("--dataset", default="amazon670k-bench")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # ---- Part 1: Figure 1 -------------------------------------------------
    print("Part 1 — per-GPU epoch time on an identical batch\n")
    rows = fig1_heterogeneity(dataset=args.dataset, seed=args.seed)
    print(render_fig1(rows))

    print("\nGap as a function of the configured base spread:")
    sweep_rows = []
    for max_gap in (0.0, 0.1, 0.2, 0.32):
        rows = fig1_heterogeneity(
            dataset=args.dataset, seed=args.seed, max_gap=max_gap
        )
        observed = max(r["relative_slowdown"] for r in rows)
        sweep_rows.append([f"{max_gap:.0%}", f"{observed:.1%}"])
    print(format_table(["configured base gap", "observed epoch-time gap"],
                       sweep_rows))

    # ---- Part 2: Figure 6 -------------------------------------------------
    print("\nPart 2 — Adaptive SGD's reaction to the heterogeneity\n")
    result = fig6_adaptivity(
        args.dataset, n_gpus=4, time_budget_s=args.budget, seed=args.seed,
    )
    print(render_fig6(result))

    trace = result.trace
    cfg = trace.metadata["config"]
    bound = staleness_bound(cfg.mega_batch_size, cfg.b_min, cfg.b_max, 4)
    print(f"\nstaleness per mega-batch: {trace.staleness_history[:12]} ...")
    print(f"analytic staleness bound: {bound:.0f} updates "
          f"(observed max: {max(trace.staleness_history)})")
    print(f"best accuracy reached: {trace.best_accuracy:.3f}")


if __name__ == "__main__":
    main()
