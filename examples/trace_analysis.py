#!/usr/bin/env python
"""Reading a trace: record a run, then let the analytics engine explain it.

One GPU of an otherwise uniform 2-GPU server is intentionally throttled to
40% speed from t=0. We record the adaptive trainer with telemetry on, then
run the full analysis chain the `repro analyze` CLI uses:

1. **time attribution** — per-device compute/transfer/wait/idle that sums
   exactly to the run span, so the throttle's cost is quantified;
2. **utilization timeline** — the ASCII lanes make the slow device's long
   step spans visible at a glance;
3. **straggler / critical path** — the analysis must *name* the throttled
   device, from the trace alone;
4. **findings** — rule-based detectors document Algorithm 1's response
   (and would flag divergence/oscillation if the run were unhealthy);
5. **comparison** — the same run recorded on a healthy uniform server
   shows what the throttle cost, phase by phase.

Run:  python examples/trace_analysis.py [--budget 0.05]
"""

import argparse

from repro.api import make_trainer
from repro.gpu.cluster import make_server
from repro.gpu.cost import CpuCostParams, GpuCostParams
from repro.gpu.profiles import ThrottledProfile
from repro.harness.experiment import ExperimentSpec
from repro.harness.report import render_analysis, render_comparison
from repro.telemetry import Telemetry, compare_runs, load_trace_data

VICTIM = 1
FACTOR = 0.4


def build_server(n_gpus: int, *, throttled: bool):
    server = make_server(
        n_gpus, heterogeneity="uniform",
        cost_params=GpuCostParams.tiny_model_profile(),
        cpu_params=CpuCostParams.tiny_model_profile(),
    )
    if throttled:
        server.gpus[VICTIM].profile = ThrottledProfile(
            server.gpus[VICTIM].profile, events=[(0.0, FACTOR)]
        )
    return server


def record(spec: ExperimentSpec, *, throttled: bool, label: str) -> Telemetry:
    tel = Telemetry(label=label)
    trainer = make_trainer(
        "adaptive", spec,
        server=build_server(2, throttled=throttled), telemetry=tel,
    )
    trainer.run(time_budget_s=spec.time_budget_s)
    return tel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.05)
    parser.add_argument("--dataset", default="micro")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = ExperimentSpec(
        dataset=args.dataset, algorithms=("adaptive",), gpu_counts=(2,),
        time_budget_s=args.budget, eval_samples=256, seed=args.seed,
    )

    print(f"gpu{VICTIM} is throttled to {FACTOR:.0%} speed for the whole "
          f"run (budget {args.budget}s)\n")
    throttled = record(spec, throttled=True, label="throttled")
    print(render_analysis(throttled))

    # The straggler verdict, programmatically (what tests/CI assert on).
    data = load_trace_data(throttled)
    from repro.telemetry import critical_path

    report = critical_path(data.run(0))
    assert report.straggler == VICTIM, (
        f"expected gpu{VICTIM} to be named the straggler, "
        f"got {report.straggler}"
    )
    print(f"\nverdict: the analysis named gpu{report.straggler} — the "
          f"device we throttled — as the straggler\n({report.reason})\n")

    # What did the throttle cost? Same trainer on a healthy server.
    healthy = record(spec, throttled=False, label="healthy")
    cmp = compare_runs(
        load_trace_data(healthy).run(0),   # baseline: healthy
        data.run(0),                       # candidate: throttled
    )
    print(render_comparison(cmp))


if __name__ == "__main__":
    main()
