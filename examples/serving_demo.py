#!/usr/bin/env python
"""The train → deploy → keep-learning loop, through ``repro.api``.

The same amortization argument the paper makes for training mega-batches
(Figure 6a) applies to inference: a batch-1 dispatch pays the full fixed
launch + transfer overhead per request, so coalescing queued queries into
micro-batches multiplies throughput. This demo walks the whole loop:

1. **train + snapshot** — a short adaptive run on `micro`, persisted as a
   versioned snapshot (JSON header + bit-identical npz);
2. **sequential vs adaptive** — the same saturating Poisson request
   stream served batch-by-batch vs through the per-device adaptive batch
   sizer (`b ← b + β·b·(target − observed)/target` against a latency SLO);
3. **burst absorption** — a 4x hot/cold arrival pattern at the same
   average rate: watch the cap grow inside bursts and shrink after;
4. **the LSH dial** — the SLIDE-style candidates-only path vs exact
   top-k: recall@5 traded against per-query work;
5. **continuous learning** — a training session publishes checkpoints
   into a snapshot store on the sim clock; a serving run replays that
   publish schedule and hot-swaps each version in mid-traffic (warming
   off the dispatch path, per-request pinning, labeled recall canary).

Every engine is built through :func:`repro.api.make_engine` — the one
validated front door for serving, mirroring ``make_trainer``.

Run:  python examples/serving_demo.py [--budget 0.2] [--requests 1500]
"""

import argparse
import tempfile
from pathlib import Path

from repro.api import make_engine, make_trainer
from repro.data.registry import load_task
from repro.harness.experiment import ExperimentSpec
from repro.serve import (
    LoadSpec,
    ModelSnapshot,
    SnapshotStore,
    generate_arrivals,
    sample_query_rows,
)

N_GPUS = 2


def train_snapshot(workdir: Path, budget: float) -> ModelSnapshot:
    spec = ExperimentSpec(
        dataset="micro", gpu_counts=(N_GPUS,), time_budget_s=budget,
    )
    trainer = make_trainer("adaptive", spec)
    trace = trainer.run(time_budget_s=budget)
    header = trainer.save_snapshot(
        workdir / "demo-model", final_accuracy=trace.final_accuracy
    )
    print(f"trained to accuracy {trace.final_accuracy:.3f}; "
          f"snapshot at {header}")
    snapshot = ModelSnapshot.load(header)
    print(f"snapshot header: {snapshot.describe()}\n")
    return snapshot


def report_line(tag: str, result) -> None:
    r = result.report
    print(f"  {tag:<12} {r.throughput_rps:12.0f} rps   "
          f"p50 {r.percentile(50) * 1e3:8.4f} ms   "
          f"p99 {r.percentile(99) * 1e3:8.4f} ms   "
          f"mean batch {r.mean_batch_size:6.2f}   "
          f"queue depth {result.max_queue_depth}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.2,
                        help="training budget in simulated seconds")
    parser.add_argument("--requests", type=int, default=1500)
    args = parser.parse_args()

    task = load_task("micro", seed=0)
    with tempfile.TemporaryDirectory(prefix="serving-demo-") as tmp:
        snapshot = train_snapshot(Path(tmp), args.budget)

    # A saturating load: ~10x what batch-1 dispatch can sustain, so the
    # fixed per-dispatch overhead (not the offered rate) is the bottleneck.
    probe_engine = make_engine(snapshot, n_gpus=N_GPUS)
    probe = probe_engine.predictor.workload(task.test.X[:1])
    per_request = probe_engine.server.gpus[0].cost_model.inference_time(
        probe, n_active_gpus=N_GPUS,
    )
    rate = 10.0 * N_GPUS / per_request
    rows = sample_query_rows(task.test.X.shape[0], args.requests, seed=0)

    print(f"-- sequential vs adaptive ({args.requests} Poisson requests "
          f"at {rate:.0f} rps on {N_GPUS} GPUs) --")
    load = LoadSpec(n_requests=args.requests, rate_rps=rate, seed=0)
    arrivals = generate_arrivals(load)
    results = {}
    for mode in ("sequential", "adaptive"):
        engine = make_engine(snapshot, mode=mode, n_gpus=N_GPUS)
        results[mode] = engine.serve(
            task.test.X, arrivals, k=5, row_indices=rows
        )
        report_line(mode, results[mode])
    speedup = (results["adaptive"].report.throughput_rps
               / results["sequential"].report.throughput_rps)
    print(f"  micro-batching amortizes the fixed dispatch overhead: "
          f"{speedup:.1f}x throughput\n")

    print("-- burst absorption (same average rate, 4x hot episodes) --")
    for pattern in ("poisson", "burst"):
        load = LoadSpec(
            n_requests=args.requests, rate_rps=rate / 4.0,
            pattern=pattern, seed=1,
        )
        engine = make_engine(snapshot, mode="adaptive", n_gpus=N_GPUS)
        result = engine.serve(
            task.test.X, generate_arrivals(load), k=5, row_indices=rows
        )
        report_line(pattern, result)
    print()

    print("-- the LSH dial (SLIDE-style candidates-only scoring) --")
    engine = make_engine(snapshot, mode="adaptive", scoring="lsh",
                         n_gpus=N_GPUS)
    predictor = engine.predictor
    sample = task.test.X[rows[:256]]
    predictor.rebuild_lsh()
    counts = predictor.candidate_counts(sample)
    recall = predictor.recall_at_k(sample, 5)
    print(f"  candidates/query: {counts.mean():.1f} of "
          f"{predictor.arch.n_labels} labels "
          f"({100 * counts.mean() / predictor.arch.n_labels:.0f}%)")
    print(f"  recall@5 vs exact top-5: {recall:.3f}")
    load = LoadSpec(n_requests=args.requests, rate_rps=rate, seed=2)
    result = engine.serve(
        task.test.X, generate_arrivals(load), k=5, row_indices=rows
    )
    report_line("adaptive+lsh", result)
    print()

    print("-- continuous learning (publish mid-serve, hot-swap, canary) --")
    with tempfile.TemporaryDirectory(prefix="serving-demo-store-") as tmp:
        store = SnapshotStore(tmp)
        spec = ExperimentSpec(
            dataset="micro", gpu_counts=(N_GPUS,), time_budget_s=args.budget,
        )
        trainer = make_trainer("adaptive", spec)
        # Checkpoint-aligned publishing: ~5 versions over the budget,
        # stamped with their sim publish times.
        trainer.publish_snapshot(store, every_s=args.budget / 5.0)
        trainer.run(time_budget_s=args.budget)
        published = ", ".join(
            f"v{e.version}@{e.published_s:.3f}s" for e in store.entries
        )
        print(f"  published: {published}")
        # Serving from the store directory auto-subscribes for hot-swaps;
        # the arrival window spans the publish schedule so every later
        # version lands mid-traffic.
        engine = make_engine(tmp, mode="adaptive", n_gpus=N_GPUS)
        span = store.entries[-1].published_s * 1.2
        load = LoadSpec(
            n_requests=args.requests,
            rate_rps=args.requests / span, seed=3,
        )
        result = engine.serve(
            task.test.X, generate_arrivals(load), k=5, row_indices=rows,
            canary_labels=task.test.Y,
        )
        report_line("hot-swap", result)
        served = " ".join(
            f"v{v}={n}" for v, n in sorted(result.versions_served.items())
        )
        print(f"  swaps: {result.n_swaps} committed, "
              f"{result.n_rollbacks} rolled back, "
              f"{result.n_swap_failures} failed; "
              f"mis-versioned batches: {result.mis_versioned}")
        print(f"  versions served: {served}")
        for swap in result.swaps:
            if "canary_recall_new" in swap:
                print(f"  canary recall@5: v{swap['version_from']} "
                      f"{swap['canary_recall_prev']:.3f} -> "
                      f"v{swap['version_to']} "
                      f"{swap['canary_recall_new']:.3f}")


if __name__ == "__main__":
    main()
