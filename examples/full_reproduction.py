#!/usr/bin/env python
"""Reproduce the paper's entire evaluation section in one run.

Executes Figure 1, Table I, Figure 4 (both datasets × {1,2,4} GPUs ×
4 methods), Figure 5 (both datasets, Adaptive vs SLIDE), Figure 6, and the
§IV all-reduce study, then prints the full report. With ``--out DIR`` the
report text and every training trace are saved for offline analysis.

Expect a few minutes of runtime at the default budget; pass a smaller
``--budget`` for a quick pass.

Run:  python examples/full_reproduction.py [--budget 0.3] [--out results/]
"""

import argparse
from pathlib import Path

from repro.harness.paper import reproduce_all
from repro.harness.store import save_result_set


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.3,
                        help="simulated seconds per training run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to save the report and all traces")
    args = parser.parse_args()

    report = reproduce_all(
        time_budget_s=args.budget, seed=args.seed,
        progress=lambda msg: print(f"[run] {msg}", flush=True),
    )
    print()
    print(report.render())

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "report.txt").write_text(report.render() + "\n")
        for dataset, traces in report.fig4.items():
            save_result_set(traces, args.out / f"fig4_{dataset}")
        for dataset, traces in report.fig5.items():
            save_result_set(traces, args.out / f"fig5_{dataset}")
        print(f"\nsaved report + traces under {args.out}/")


if __name__ == "__main__":
    main()
