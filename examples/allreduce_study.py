#!/usr/bin/env python
"""All-reduce model merging study (§IV of the paper).

Compares the merge strategies HeteroGPU implements — multi-stream ring and
single-stream tree — across model sizes, GPU counts, stream counts, and
interconnects (PCIe vs NVLink), and verifies the numeric equivalence of all
schedules against the single-step weighted average.

Run:  python examples/allreduce_study.py
"""

import numpy as np

from repro.comm.ring import RingAllReduce
from repro.comm.topology import InterconnectTopology
from repro.comm.tree import TreeAllReduce
from repro.harness.figures import allreduce_comparison
from repro.harness.report import render_allreduce
from repro.utils.tables import format_table


def main() -> None:
    # ---- the §IV comparison table ------------------------------------------
    rows = allreduce_comparison(
        model_params=(262_144, 1_048_576, 8_388_608, 33_554_432),
        gpu_counts=(2, 4, 8),
    )
    print(render_allreduce(rows))

    # ---- stream-count sweep (the paper's 'optimal partitions == GPUs') ----
    topo = InterconnectTopology.single_server_pcie(4)
    nbytes = 4 * 4_194_304
    sweep = [
        [s, RingAllReduce(s).time_seconds(nbytes, topo).total_s * 1e3]
        for s in (1, 2, 4, 8, 16)
    ]
    print()
    print(format_table(
        ["streams", "merge time (ms)"], sweep,
        title="ring stream-count sweep (4 GPUs, 16M-param model)",
    ))

    # ---- interconnect comparison ------------------------------------------
    print()
    inter_rows = []
    for name, topo in (
        ("PCIe 3.0", InterconnectTopology.single_server_pcie(4)),
        ("NVLink", InterconnectTopology.single_server_nvlink(4)),
    ):
        ring = RingAllReduce(4).time_seconds(nbytes, topo).total_s * 1e3
        tree = TreeAllReduce().time_seconds(nbytes, topo).total_s * 1e3
        inter_rows.append([name, ring, tree])
    print(format_table(
        ["interconnect", "ring multi (ms)", "tree single (ms)"],
        inter_rows, title="interconnect comparison",
    ))

    # ---- the third schedule: recursive halving-doubling -------------------
    from repro.comm.halving_doubling import HalvingDoublingAllReduce

    print()
    hd_rows = []
    for params in (262_144, 4_194_304, 33_554_432):
        nb = 4 * params
        hd_rows.append([
            params,
            RingAllReduce(4).time_seconds(nb, topo).total_s * 1e3,
            HalvingDoublingAllReduce().time_seconds(nb, topo).total_s * 1e3,
            TreeAllReduce().time_seconds(nb, topo).total_s * 1e3,
        ])
    print(format_table(
        ["model params", "ring multi (ms)", "halving-doubling (ms)",
         "tree single (ms)"],
        hd_rows,
        title="the latency/bandwidth spectrum (4 GPUs)",
    ))

    # ---- numeric equivalence ----------------------------------------------
    rng = np.random.default_rng(0)
    vectors = [rng.normal(size=100_000).astype(np.float32) for _ in range(4)]
    weights = [0.3, 0.3, 0.25, 0.15]
    reference = sum(
        np.float64(w) * v.astype(np.float64)
        for w, v in zip(weights, vectors)
    ).astype(np.float32)
    print("\nnumeric check vs reference weighted average:")
    for algo in (RingAllReduce(1), RingAllReduce(4), TreeAllReduce(),
                 HalvingDoublingAllReduce()):
        out = algo.reduce(vectors, weights)
        err = float(np.abs(out - reference).max())
        label = f"{algo.name} ({getattr(algo, 'n_streams', 1)} stream(s))"
        print(f"  {label:20s} max abs deviation = {err:.2e}")


if __name__ == "__main__":
    main()
