#!/usr/bin/env python
"""Smart algorithms vs hardware acceleration: SLIDE against Adaptive SGD.

Reproduces the Figure-5 comparison: the LSH-based SLIDE algorithm on the
(virtual) multicore CPU against Adaptive SGD at 1, 2, and 4 GPUs. Two views
of the same runs:

- **time axis (5a)** — the GPUs win: even a single GPU reaches any accuracy
  level sooner than the CPU;
- **epoch axis (5b)** — SLIDE wins: its one-update-per-sample training
  extracts more accuracy from each pass over the data.

The paper's conclusion: "while specialized algorithms are valuable, they
cannot easily outperform adequately tuned solutions on superior computing
architectures."

Run:  python examples/slide_vs_gpu.py [--budget 0.25]
"""

import argparse

from repro.harness.figures import fig5_scalability
from repro.harness.report import render_tta_curves
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.25)
    parser.add_argument("--dataset", default="amazon670k-bench")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Running Adaptive SGD (1/2/4 GPUs) and SLIDE on {args.dataset} ...")
    traces = fig5_scalability(
        args.dataset, gpu_counts=(1, 2, 4), time_budget_s=args.budget,
        seed=args.seed,
    )

    print()
    print(render_tta_curves(
        traces, title="Figure 5a — time-to-accuracy", max_points=8,
    ))
    print()
    print(render_tta_curves(
        traces, x="epochs",
        title="Figure 5b — statistical efficiency (accuracy vs epochs)",
        max_points=8,
    ))

    rows = []
    for (algo, n), trace in traces.items():
        last = trace.points[-1]
        rows.append([
            trace.label(),
            trace.best_accuracy,
            trace.total_epochs,
            last.updates,
            last.updates / max(last.epochs, 1e-9),
        ])
    print()
    print(format_table(
        ["run", "best acc", "epochs", "model updates", "updates/epoch"],
        rows,
        title="hardware vs statistical efficiency",
    ))


if __name__ == "__main__":
    main()
