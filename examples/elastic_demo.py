#!/usr/bin/env python
"""Elastic membership: a replica fails mid-training, a replacement joins.

The paper's training loop assumes a fixed device set; real clusters
shed and gain devices (spot preemption, thermal throttling, autoscaling).
This demo drives one adaptive run through an explicit membership
timeline and shows the three guarantees the elastic subsystem makes:

1. **fail** — a replica dies mid-mega-batch. Its in-flight update is
   discarded exactly once (never merged, never double-counted), the
   survivors' batch sizes rescale by the Dynamic-Mini-batch rule
   (``b * n_before / n_after``, learning rate following linearly), and
   the run continues without a restart;
2. **join** — a replacement warm-starts from the current global model at
   a ramped batch size (half the survivors' mean), and Algorithm 1 grows
   it toward parity over subsequent mega-batches;
3. **attribution** — the telemetry stream records every membership event
   as an instant, so ``repro analyze`` can pin the convergence blip to
   the failure: loss straddling each event, before vs after.

Run:  python examples/elastic_demo.py [--budget 0.06]
"""

import argparse

from repro.api import make_trainer
from repro.elastic import ClusterMembership, MembershipEvent, MembershipTimeline
from repro.harness.experiment import ExperimentSpec
from repro.telemetry import Telemetry, TraceData
from repro.telemetry.analyze import membership_events

N_GPUS = 4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.06,
                        help="training budget in simulated seconds")
    args = parser.parse_args()
    budget = args.budget

    # The script: device 2 fails at 40% of the budget; a replacement
    # joins at 70%. Timestamps are sim-clock seconds.
    timeline = MembershipTimeline([
        MembershipEvent(0.4 * budget, "fail", 2),
        MembershipEvent(0.7 * budget, "join", N_GPUS),
    ])

    spec = ExperimentSpec(
        dataset="micro", gpu_counts=(N_GPUS,), time_budget_s=budget,
    )
    server = spec.build_server(N_GPUS)
    tel = Telemetry(label="elastic-demo")
    membership = ClusterMembership(server, timeline, telemetry=tel)
    trainer = make_trainer(
        "adaptive", spec, server=server, telemetry=tel,
        membership=membership,
    )

    print(f"-- training on {N_GPUS} GPUs, fail@{0.4 * budget:.3f}s, "
          f"join@{0.7 * budget:.3f}s --")
    trace = trainer.run(time_budget_s=budget)
    summary = trace.metadata["membership"]
    print(f"  run completed: best accuracy {trace.best_accuracy:.3f} "
          f"({len(trace)} eval points)")
    print(f"  events applied: {summary['by_kind']}  "
          f"(final devices: {summary['final_devices']})")
    print(f"  update ledger: {summary['updates_merged']} merged, "
          f"{summary['updates_discarded']} discarded — the failed "
          f"replica's in-flight work, exactly once\n")

    print("-- what analyze pins to each event --")
    run = TraceData.from_telemetry(tel).run(0)
    section = membership_events(run)
    envelope = section["active_devices"]
    print(f"  active devices: {envelope['initial']:.0f} -> "
          f"min {envelope['min']:.0f} -> {envelope['final']:.0f}")
    for event in section["events"]:
        line = (f"  t={event['t']:.4f}s  {event['kind']:<5} "
                f"device {event['device']}")
        if "loss_delta" in event:
            line += (f"  loss {event['loss_before']:.4f} -> "
                     f"{event['loss_after']:.4f} "
                     f"(delta {event['loss_delta']:+.4f})")
        print(line)
    fail_events = [e for e in section["events"] if e["kind"] == "fail"]
    if fail_events and "loss_delta" in fail_events[0]:
        blip = fail_events[0]["loss_delta"]
        verdict = ("a visible blip" if blip > 0
                   else "absorbed without a blip")
        print(f"\n  the failure cost {blip:+.4f} loss — {verdict}; the "
              f"joiner then warm-started from the global model and the "
              f"run recovered without restarting.")


if __name__ == "__main__":
    main()
