"""TAB1 — Experimental datasets for XML classification (Table I).

Regenerates the dataset-characteristics table for the synthetic analogues
and prints the paper's original rows alongside for reference. The shape
signatures must hold: the Amazon analogue has more classes than features
with ~5 labels per sample; the Delicious analogue has more features than
classes with dense label sets.
"""

from benchmarks.conftest import bench_seed
from repro.harness.figures import PAPER_TABLE1, table1_rows
from repro.harness.report import render_table1


def test_table1_dataset_characteristics(once):
    rows = once(
        table1_rows,
        datasets=("amazon670k-bench", "delicious200k-bench",
                  "amazon670k-tiny", "delicious200k-tiny"),
        seed=bench_seed(),
    )
    print()
    print(render_table1(rows, PAPER_TABLE1))

    amazon, delicious = rows[0], rows[1]
    # Amazon signature: classes > features, sparse label sets.
    assert amazon["classes"] > amazon["features"]
    assert amazon["avg classes per sample"] < 7
    # Delicious signature: features > classes, dense label sets.
    assert delicious["features"] > delicious["classes"]
    assert delicious["avg classes per sample"] > amazon["avg classes per sample"]
    # Both are genuinely sparse.
    assert amazon["avg features per sample"] < 0.1 * amazon["features"]
    assert delicious["avg features per sample"] < 0.1 * delicious["features"]
