"""Host microbenchmarks of the numeric substrate (pytest-benchmark proper).

Not a paper artifact: these time the real numpy/scipy kernels that every
simulated experiment executes on the host — forward/backward of the sparse
MLP, the multi-label loss, P@k evaluation, the per-sample SLIDE update, and
LSH table maintenance. They exist to keep the reproduction's host cost
under control (a regression here slows every bench and test).
"""

import numpy as np
import pytest

from repro.baselines.slide.lsh import SimHashLSH
from repro.data.batching import BatchCursor
from repro.data.registry import load_task
from repro.sparse.loss import softmax_cross_entropy
from repro.sparse.metrics import precision_at_k
from repro.sparse.mlp import MLPArchitecture, SparseMLP
from repro.sparse.optimizer import sgd_step


@pytest.fixture(scope="module")
def workload():
    task = load_task("amazon670k-bench", seed=0)
    arch = MLPArchitecture(task.n_features, task.n_labels, hidden=(64,))
    mlp = SparseMLP(arch)
    state = mlp.init_state(seed=0)
    batch = BatchCursor(task.train, seed=0).next_batch(128)
    return task, mlp, state, batch


def test_forward_pass(benchmark, workload):
    _, mlp, state, batch = workload
    logits = benchmark(mlp.predict, batch.X, state)
    assert logits.shape == (128, mlp.arch.n_labels)


def test_loss_and_grad(benchmark, workload):
    _, mlp, state, batch = workload
    grad = mlp.zeros_state()
    loss, _ = benchmark(mlp.loss_and_grad, batch, state, grad)
    assert np.isfinite(loss)


def test_sgd_step(benchmark, workload):
    _, mlp, state, batch = workload
    _, grad = mlp.loss_and_grad(batch, state)
    working = state.copy()
    benchmark(sgd_step, working, grad, 0.1)


def test_softmax_cross_entropy_kernel(benchmark, workload):
    task, mlp, state, batch = workload
    logits = mlp.predict(batch.X, state)
    loss, _ = benchmark(softmax_cross_entropy, logits, batch.Y)
    assert loss > 0


def test_precision_at_k_kernel(benchmark, workload):
    task, mlp, state, _ = workload
    X, Y = task.test.X[:512], task.test.Y[:512]
    scores = mlp.evaluate(X, Y, state)
    out = benchmark(precision_at_k, scores, Y, (1, 3, 5))
    assert set(out) == {1, 3, 5}


def test_lsh_rebuild(benchmark, workload):
    _, mlp, state, _ = workload
    lsh = SimHashLSH(64, n_tables=8, n_bits=8, seed=0)
    benchmark(lsh.rebuild, state["W2"])
    assert lsh.is_built


def test_lsh_query(benchmark, workload):
    _, mlp, state, _ = workload
    lsh = SimHashLSH(64, n_tables=8, n_bits=8, seed=0)
    lsh.rebuild(state["W2"])
    query = np.random.default_rng(1).normal(size=64).astype(np.float32)
    result = benchmark(lsh.query, query)
    assert result.ndim == 1
