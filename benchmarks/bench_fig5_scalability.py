"""FIG5 — Scalability: Adaptive SGD vs SLIDE (Figure 5a/5b).

Figure 5a (time-to-accuracy): Adaptive SGD at 1, 2, and 4 GPUs against the
SLIDE CPU baseline on the same time axis. Expected shape: every GPU
configuration — including a single GPU — beats the optimized CPU algorithm,
and 4 GPUs reach the highest accuracy in the shortest time.

Figure 5b (statistical efficiency): the same runs on the *epoch* axis.
Expected shape: SLIDE needs fewer epochs to reach a given accuracy than the
batched GPU methods ("the reason is the higher number of model updates" —
one per sample), i.e. its accuracy-per-epoch curve rises faster even though
its wall-clock curve is the slowest.
"""

import pytest

from benchmarks.conftest import bench_budget, bench_seed
from repro.harness.figures import fig5_scalability
from repro.harness.report import render_tta_curves, render_tta_summary


@pytest.mark.parametrize(
    "dataset", ["amazon670k-bench", "delicious200k-bench"]
)
def test_fig5_scalability_and_statistical_efficiency(once, dataset):
    traces = once(
        fig5_scalability,
        dataset,
        gpu_counts=(1, 2, 4),
        time_budget_s=bench_budget(),
        seed=bench_seed(),
    )
    print()
    print(render_tta_curves(
        traces, title=f"Figure 5a — {dataset} (time axis)", max_points=8,
    ))
    print()
    print(render_tta_curves(
        traces, x="epochs",
        title=f"Figure 5b — {dataset} (epoch axis)", max_points=8,
    ))
    print()
    print(render_tta_summary(list(traces.values())))

    slide = traces[("slide", 1)]
    adaptive = {n: traces[("adaptive", n)] for n in (1, 2, 4)}

    # 5a: every GPU configuration beats the CPU baseline in accuracy-at-time.
    horizon = bench_budget()
    for n, trace in adaptive.items():
        assert trace.accuracy_at_time(horizon) > slide.accuracy_at_time(horizon), (
            f"{n}-GPU Adaptive did not beat SLIDE at the time horizon"
        )

    # 5a: more GPUs reach a mid-level target at least as fast.
    target = 0.6 * adaptive[4].best_accuracy
    t4 = adaptive[4].time_to_accuracy(target)
    t1 = adaptive[1].time_to_accuracy(target)
    assert t4 is not None
    assert t1 is None or t4 <= t1

    # 5b: SLIDE's statistical efficiency — accuracy per *epoch* — beats the
    # batched GPU method at the epoch horizon both can reach.
    common_epochs = min(slide.total_epochs, adaptive[4].total_epochs) * 0.8
    def acc_at_epochs(trace, e):
        best = 0.0
        for p in trace.points:
            if p.epochs > e:
                break
            best = max(best, p.accuracy)
        return best

    assert acc_at_epochs(slide, common_epochs) > acc_at_epochs(
        adaptive[4], common_epochs
    ) - 0.02, "SLIDE should be at least as statistically efficient per epoch"
