"""HOTPATH — microbenchmarks for the fused hot-path execution engine.

Four sections, each timing the pre-optimization idiom against the
``repro.perf`` kernel that replaced it:

1. **gather** — ``X[idx]`` scipy fancy indexing vs :class:`RowGatherer`
   (slot-reusing vectorized segment gather);
2. **step** — ``SparseMLP.loss_and_grad`` allocating vs workspace-routed
   (out-param ``csr_matvecs``/``csc_matvecs`` + bucketed buffers);
3. **merge** — ring all-reduce with per-call ``w_i * v_i`` allocations vs
   the preallocated ``work`` rows, plus the one-pass ``l2_norm``;
4. **slide** — the per-sample SLIDE update loop vs
   :func:`slide_chunk_step` (union-GEMM sampled softmax);
5. **telemetry** — a full trainer run with telemetry disabled vs enabled:
   the *overhead* of the tracing layer (must stay within 5% when enabled).

Run as a script: ``python benchmarks/bench_hotpath.py [--smoke] [--out F]
[--check BASELINE] [--registry DIR] [--sections NAME ...]``. ``--check``
compares the measured *speedups* (machine-independent ratios) against a
baseline and exits non-zero on a >30% regression, and gates the telemetry
section on the absolute 5% overhead budget — the CI gate. With
``--registry``, the expected speedup comes from **index history** (the
median of the last N green runs of this bench in the cross-run registry,
see ``repro.registry.baseline``) and the checked-in JSON is only the
seed/fallback for cold indexes; each invocation then registers its own
results (tagged ``bench:hotpath``, red when the gate failed) so the
history tracks the fleet's actual trajectory. ``--sections`` runs a
subset (gated sections not run are skipped by the gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.slide.lsh import SimHashLSH  # noqa: E402
from repro.baselines.slide.sampler import ActiveLabelSampler  # noqa: E402
from repro.comm.ring import RingAllReduce  # noqa: E402
from repro.data.batching import Batch  # noqa: E402
from repro.perf.gather import RowGatherer  # noqa: E402
from repro.perf.slide_kernel import slide_chunk_step  # noqa: E402
from repro.perf.workspace import Workspace, spmm_into  # noqa: E402
from repro.sparse.mlp import MLPArchitecture, SparseMLP  # noqa: E402

REGRESSION_TOLERANCE = 0.30  # fail --check when speedup drops >30%
GATED_SECTIONS = ("gather", "step")  # the CI regression gate
TELEMETRY_OVERHEAD_BUDGET = 0.05  # enabled-telemetry wall overhead ceiling


def _time(fn, reps: int, warmup: int = 2) -> float:
    """Best-of-reps wall time of ``fn()`` in microseconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e6


def make_sparse(n, f, density, seed):
    m = sp.random(
        n, f, density=density, format="csr", dtype=np.float32,
        random_state=np.random.default_rng(seed),
    )
    m.sum_duplicates()
    m.sort_indices()
    return m


def bench_gather(smoke: bool) -> dict:
    n, f = (20000, 50000) if not smoke else (5000, 20000)
    batch, reps = 256, (50 if not smoke else 15)
    X = make_sparse(n, f, 0.002, seed=0)
    rng = np.random.default_rng(1)
    idx = rng.integers(0, n, size=batch)
    gatherer = RowGatherer(X)
    baseline_us = _time(lambda: X[idx], reps)
    fast_us = _time(lambda: gatherer.gather(idx), reps)
    return {
        "what": f"{batch}-row gather from ({n}, {f}) CSR",
        "baseline_us": baseline_us,
        "fast_us": fast_us,
        "speedup": baseline_us / fast_us,
    }


def bench_step(smoke: bool) -> dict:
    n_feat, L, hidden = (40000, 8000, (128,)) if not smoke else (20000, 4000, (128,))
    batch, reps = 256, (30 if not smoke else 10)
    X = make_sparse(batch, n_feat, 0.002, seed=2)
    rng = np.random.default_rng(3)
    rows = np.repeat(np.arange(batch), 2)
    cols = rng.integers(0, L, size=2 * batch)
    Y = sp.csr_matrix((np.ones(2 * batch, np.float32), (rows, cols)), shape=(batch, L))
    Y.sum_duplicates()
    Y.data[:] = 1.0
    b = Batch(X=X, Y=Y, indices=np.arange(batch))
    mlp = SparseMLP(MLPArchitecture(n_features=n_feat, n_labels=L, hidden=hidden))
    state = mlp.init_state(seed=4)
    grad = mlp.zeros_state()
    ws = Workspace()
    baseline_us = _time(lambda: mlp.loss_and_grad(b, state, grad_out=grad), reps)
    fast_us = _time(
        lambda: mlp.loss_and_grad(b, state, grad_out=grad, workspace=ws), reps
    )
    return {
        "what": f"loss_and_grad batch={batch} dims=({n_feat},{hidden[0]},{L})",
        "baseline_us": baseline_us,
        "fast_us": fast_us,
        "speedup": baseline_us / fast_us,
    }


def bench_merge(smoke: bool) -> dict:
    n_gpus = 4
    size = 2_000_000 if not smoke else 500_000
    reps = 10 if not smoke else 5
    rng = np.random.default_rng(5)
    vectors = [rng.normal(size=size).astype(np.float32) for _ in range(n_gpus)]
    weights = [0.25] * n_gpus
    ring = RingAllReduce(n_streams=n_gpus)
    work = np.empty((n_gpus, size), dtype=np.float32)
    baseline_us = _time(lambda: ring.reduce(vectors, weights), reps)
    fast_us = _time(lambda: ring.reduce(vectors, weights, work=work), reps)
    return {
        "what": f"ring reduce {n_gpus}x{size} floats",
        "baseline_us": baseline_us,
        "fast_us": fast_us,
        "speedup": baseline_us / fast_us,
    }


def bench_slide(smoke: bool) -> dict:
    F, H, L = (30000, 128, 10000) if not smoke else (10000, 128, 4000)
    chunk = 256
    reps = 5 if not smoke else 3
    Xc = make_sparse(chunk, F, 0.003, seed=6)
    rng = np.random.default_rng(7)
    W1 = rng.normal(scale=0.1, size=(F, H)).astype(np.float32)
    b1 = np.zeros(H, dtype=np.float32)
    W2 = rng.normal(scale=0.1, size=(H, L)).astype(np.float32)
    b2 = np.zeros(L, dtype=np.float32)
    label_sets = [
        np.sort(rng.choice(L, size=rng.integers(1, 4), replace=False))
        for _ in range(chunk)
    ]
    label_counts = np.array([ls.size for ls in label_sets], dtype=np.int64)
    min_active, max_active = max(32, L // 24), max(128, L // 6)
    lr = np.float32(0.01)
    ws = Workspace()

    def fresh_sampler(seed=8):
        lsh = SimHashLSH(H, n_tables=16, n_bits=8, seed=seed)
        lsh.rebuild(W2)
        return ActiveLabelSampler(
            L, lsh, min_active=min_active, max_active=max_active, seed=seed
        )

    # The LSH rebuild is amortized over `rebuild_every` samples in the real
    # trainer and identical in both code paths, so it stays outside the
    # timed region; both paths operate on weight copies, so the tables built
    # from the original W2 remain valid across reps.
    sampler_base = fresh_sampler()
    sampler_chunk = fresh_sampler()

    def per_sample_epoch():
        """The pre-optimization inner loop (weights restored afterwards)."""
        sampler = sampler_base
        W1c, b1c, W2c, b2c = W1.copy(), b1.copy(), W2.copy(), b2.copy()
        for i in range(chunk):
            start, stop = Xc.indptr[i], Xc.indptr[i + 1]
            cols = Xc.indices[start:stop]
            vals = Xc.data[start:stop]
            labels = label_sets[i]
            z1 = vals @ W1c[cols] + b1c
            h1 = np.maximum(z1, 0.0)
            active = sampler.sample(h1, labels)
            k = labels.size
            logits = h1 @ W2c[:, active] + b2c[active]
            logits -= logits.max()
            p = np.exp(logits)
            p /= p.sum()
            dlog = p
            dlog[:k] -= np.float32(1.0 / k)
            dh = W2c[:, active] @ dlog
            dz1 = dh * (z1 > 0.0)
            W2c[:, active] -= lr * np.outer(h1, dlog)
            b2c[active] -= lr * dlog
            W1c[cols] -= lr * np.outer(vals, dz1)
            b1c -= lr * dz1

    def chunked():
        sampler = sampler_chunk
        W1c, b1c, W2c, b2c = W1.copy(), b1.copy(), W2.copy(), b2.copy()
        H1 = ws.buffer("h1", chunk, H)
        spmm_into(Xc, W1c, H1)
        H1 += b1c
        np.maximum(H1, 0.0, out=H1)
        actives = sampler.sample_batch(H1, label_sets)
        slide_chunk_step(
            Xc, H1, label_counts, actives, W1c, b1c, W2c, b2c, lr,
            workspace=ws,
        )

    baseline_us = _time(per_sample_epoch, reps, warmup=1)
    fast_us = _time(chunked, reps, warmup=1)
    return {
        "what": f"{chunk}-sample SLIDE update, dims=({F},{H},{L})",
        "baseline_us": baseline_us,
        "fast_us": fast_us,
        "speedup": baseline_us / fast_us,
        "per_sample_us_baseline": baseline_us / chunk,
        "per_sample_us_fast": fast_us / chunk,
    }


def bench_telemetry(smoke: bool) -> dict:
    """Wall cost of a real trainer run: telemetry disabled vs enabled.

    Unlike the other sections (old idiom vs new kernel), this one measures
    the *overhead* of the tracing layer itself — ``overhead`` is the
    fractional slowdown of the enabled run and must stay under the 5%
    budget (``speedup`` is its reciprocal framing, for the shared report).
    """
    from repro.api import make_trainer  # noqa: E402 (after sys.path insert)
    from repro.harness.experiment import ExperimentSpec  # noqa: E402
    from repro.telemetry import Telemetry  # noqa: E402

    budget = 0.03 if not smoke else 0.015
    pairs = 7 if not smoke else 5
    spec = ExperimentSpec(dataset="micro", gpu_counts=(4,), time_budget_s=budget)

    def run_once(telemetry):
        # Fresh recorder per rep so event buffers never amortize across reps.
        trainer = make_trainer("adaptive", spec, telemetry=telemetry)
        return trainer.run(time_budget_s=budget)

    run_once(None)
    run_once(Telemetry())  # warmup both arms
    # Shared-machine noise is bursty and multiplicative, so the arms are
    # interleaved: each pair runs disabled-then-enabled back to back, and
    # the overhead estimate is the *minimum* paired ratio — the quietest
    # pair. A real tracing regression shifts every pair, so the gate still
    # catches it; a contention spike only inflates the pairs it lands on.
    base_times, fast_times, ratios = [], [], []
    for _ in range(pairs):
        t0 = time.perf_counter()
        run_once(None)
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_once(Telemetry())
        fast = time.perf_counter() - t0
        base_times.append(base)
        fast_times.append(fast)
        ratios.append(fast / base)
    baseline_us = min(base_times) * 1e6
    fast_us = min(fast_times) * 1e6
    return {
        "what": f"adaptive run on micro, budget={budget}s, disabled vs enabled",
        "baseline_us": baseline_us,
        "fast_us": fast_us,
        "speedup": baseline_us / fast_us,
        "overhead": min(ratios) - 1.0,
    }


ALL_SECTIONS = ("gather", "step", "merge", "slide", "telemetry")


def run(smoke: bool, sections_filter=None) -> dict:
    sections = {}
    for name, fn in (
        ("gather", bench_gather),
        ("step", bench_step),
        ("merge", bench_merge),
        ("slide", bench_slide),
        ("telemetry", bench_telemetry),
    ):
        if sections_filter is not None and name not in sections_filter:
            continue
        sections[name] = fn(smoke)
        s = sections[name]
        print(
            f"{name:>9}: {s['baseline_us']:10.1f} us -> {s['fast_us']:10.1f} us "
            f"({s['speedup']:.2f}x)  [{s['what']}]"
        )
    return {
        "benchmark": "hotpath",
        "mode": "smoke" if smoke else "full",
        "sections": sections,
    }


def check(results: dict, baseline_path: Path, registry=None) -> int:
    """CI gate: speedup regressions >30% and telemetry overhead >5% fail.

    With ``registry``, the expected speedup per gated section is the
    median of the registry's last green runs of this bench (the checked-in
    JSON is the fallback while the index holds < 2 prior runs); without
    one, the checked-in JSON gates alone, as before.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name in GATED_SECTIONS:
        if name not in results["sections"]:
            continue  # filtered out by --sections
        have = results["sections"][name]["speedup"]
        fallback = baseline["sections"][name]["speedup"]
        if registry is not None:
            from repro.registry import history_baseline

            resolved = history_baseline(
                registry, f"sections/{name}/speedup",
                bench="hotpath", fallback=fallback,
            )
            want = resolved.value
            print(f"check {name}: baseline source: {resolved.describe()}")
        else:
            want = fallback
        floor = want * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if have >= floor else "REGRESSED"
        print(f"check {name}: speedup {have:.2f}x vs baseline {want:.2f}x "
              f"(floor {floor:.2f}x) -> {status}")
        if have < floor:
            failures.append(name)
    # Absolute gate, independent of the baseline file: enabled telemetry may
    # cost at most TELEMETRY_OVERHEAD_BUDGET over the disabled run.
    telemetry = results["sections"].get("telemetry")
    if telemetry is not None:
        overhead = telemetry["overhead"]
        status = "ok" if overhead <= TELEMETRY_OVERHEAD_BUDGET else "OVER BUDGET"
        print(f"check telemetry: overhead {overhead * 100:+.2f}% "
              f"(budget {TELEMETRY_OVERHEAD_BUDGET * 100:.0f}%) -> {status}")
        if overhead > TELEMETRY_OVERHEAD_BUDGET:
            failures.append("telemetry")
    if failures:
        print(f"FAIL: hot-path regression in {failures}")
        return 1
    print("hot-path regression check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small/fast sizes")
    parser.add_argument("--out", type=Path, default=None,
                        help="write results JSON here")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to gate speedups against "
                             "(the fallback when --registry has history)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="cross-run registry root: gate against index "
                             "history and register this run's results")
    parser.add_argument("--sections", nargs="+", default=None,
                        choices=ALL_SECTIONS,
                        help="run only these sections (default: all)")
    args = parser.parse_args(argv)
    registry = None
    if args.registry is not None:
        from repro.registry import RunRegistry

        registry = RunRegistry(args.registry)
    results = run(smoke=args.smoke, sections_filter=args.sections)
    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    rc = 0
    if args.check is not None:
        rc = check(results, args.check, registry=registry)
    if registry is not None:
        # Register after the gate so a run never baselines itself, and
        # mark gate failures red so they never enter future baselines.
        from repro.registry import record_bench_run

        run_id = record_bench_run(
            registry, "hotpath", results,
            status="green" if rc == 0 else "red",
        )
        print(f"registered: {run_id} (registry {args.registry})")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
