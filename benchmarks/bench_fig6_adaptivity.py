"""FIG6 — Do batch size scaling and perturbation activate? (Figure 6a/6b).

Figure 6a: per-GPU batch size after every mega-batch. Expected shape: all
GPUs start at ``b_max``, the sizes fluctuate for the first mega-batches and
then converge to a limited per-GPU band (fast GPUs high, slow GPUs lower),
at which point all GPUs perform a synchronized number of updates.

Figure 6b: perturbation activation frequency. Expected shape: perturbation
fires at a very high fraction of the merges (fresh XML models are far below
the regularization threshold), confirming the mechanism is actually live.
"""

import numpy as np

from benchmarks.conftest import bench_budget, bench_seed
from repro.harness.figures import fig6_adaptivity
from repro.harness.report import render_fig6


def test_fig6_batch_scaling_and_perturbation(once):
    result = once(
        fig6_adaptivity,
        "amazon670k-bench",
        n_gpus=4,
        time_budget_s=bench_budget(),
        seed=bench_seed(),
    )
    print()
    print(render_fig6(result))

    trace = result.trace
    history = trace.batch_size_history
    assert len(history) >= 10, "need enough mega-batches to judge convergence"

    cfg = trace.metadata["config"]
    # Start: everyone at b_max (paper: initialized with the maximum value).
    assert history[0] == tuple([cfg.b_max] * 4)

    # Scaling activated: batch sizes moved away from b_max.
    assert any(size != cfg.b_max for sizes in history for size in sizes)

    # Convergence: the last third of the run varies less than the first third.
    arr = np.asarray(history, dtype=float)
    third = len(arr) // 3
    early_spread = arr[:third].std(axis=0).mean()
    late_spread = arr[-third:].std(axis=0).mean()
    assert late_spread <= early_spread + 1.0

    # Steady state brings update parity: staleness shrinks to <= 1 update.
    assert min(trace.staleness_history[-third:]) <= 1

    # Figure 6b: perturbation fires at a very high frequency.
    assert result.perturbation_frequency > 0.8

    # Batch sizes always respect the paper's bounds.
    assert arr.min() >= cfg.b_min
    assert arr.max() <= cfg.b_max
