"""Shared benchmark configuration.

Every bench regenerates one paper artifact (table or figure) and prints it
in the paper's layout. Experiment benches are *single-shot* — training runs
are long and deterministic, so they run once via ``benchmark.pedantic``;
microbenches (kernels, collectives) use normal repeated timing.

Environment knobs:

- ``REPRO_BENCH_BUDGET`` — simulated seconds per training run (default 0.3).
- ``REPRO_BENCH_SEED`` — experiment seed (default 0).
"""

from __future__ import annotations

import os

import pytest


def bench_budget() -> float:
    """Simulated seconds per training run (env-overridable)."""
    return float(os.environ.get("REPRO_BENCH_BUDGET", "0.3"))


def bench_seed() -> int:
    """Experiment seed (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture()
def once(benchmark):
    """Run a deterministic experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
        )

    return runner
