"""IMPL-AR — All-reduce model merging (§IV).

Paper: "While the NCCL tree-based implementation is more efficient on a
single stream, the multi-stream ring-based all-reduce function performs
model merging at least twice as fast. Thus, this is the method used
throughout the experiments." Also: "The optimal number of partitions — and
GPU streams — is empirically determined to be equal with the number of GPUs
in the system."

Two parts:

1. **Simulated merge times** — the §IV comparison table across model sizes
   and GPU counts, including the stream-count sweep that locates the
   optimum at ``n_streams == n_gpus``.
2. **Host microbenchmarks** — real numpy executions of the ring/tree
   schedules vs the single-step reference, timed by pytest-benchmark (these
   validate that the numeric paths are usable at experiment scale).
"""

import numpy as np
import pytest

from repro.comm.ring import RingAllReduce
from repro.comm.topology import InterconnectTopology
from repro.comm.tree import TreeAllReduce
from repro.harness.figures import allreduce_comparison
from repro.harness.report import render_allreduce
from repro.sparse.model_state import ModelState, weighted_average
from repro.utils.tables import format_table


def test_allreduce_merge_time_comparison(once):
    rows = once(
        allreduce_comparison,
        model_params=(262_144, 1_048_576, 8_388_608, 33_554_432),
        gpu_counts=(2, 4, 8),
    )
    print()
    print(render_allreduce(rows))
    # The paper's claim, at the testbed size (4 GPUs), for every model size:
    for row in rows:
        if row["gpus"] == 4:
            assert row["ring_multi_vs_tree"] >= 2.0


def test_allreduce_optimal_streams_equal_gpus(once):
    """Sweep stream counts: the minimum merge time sits at n_streams == n."""

    def sweep():
        topo = InterconnectTopology.single_server_pcie(4)
        nbytes = 4 * 4_194_304
        return {
            streams: RingAllReduce(streams).time_seconds(nbytes, topo).total_s
            for streams in (1, 2, 4, 8, 16)
        }

    times = once(sweep)
    print()
    print(format_table(
        ["streams", "merge time (ms)"],
        [[s, t * 1e3] for s, t in times.items()],
        title="§IV — ring all-reduce stream-count sweep (4 GPUs)",
    ))
    best = min(times, key=times.get)
    assert best == 4  # optimum at n_streams == n_gpus


SIZE = 1_048_576


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    vectors = [rng.normal(size=SIZE).astype(np.float32) for _ in range(4)]
    weights = [0.3, 0.3, 0.2, 0.2]
    return vectors, weights


def test_host_ring_reduce_throughput(benchmark, operands):
    vectors, weights = operands
    result = benchmark(RingAllReduce(4).reduce, vectors, weights)
    assert result.shape == (SIZE,)


def test_host_tree_reduce_throughput(benchmark, operands):
    vectors, weights = operands
    result = benchmark(TreeAllReduce().reduce, vectors, weights)
    assert result.shape == (SIZE,)


def test_host_reference_reduce_throughput(benchmark, operands):
    vectors, weights = operands
    spec = [("W", (SIZE,))]
    states = [ModelState.from_vector(spec, v.copy()) for v in vectors]
    result = benchmark(weighted_average, states, weights)
    assert result.n_params == SIZE
