"""ABL — Ablations of Adaptive SGD's design choices (DESIGN.md §5).

Not a paper artifact: these benches quantify each mechanism's contribution
on the 4-GPU heterogeneous server, under otherwise identical conditions.

Variants (from :func:`repro.harness.sweep.ablation_grid`):

- ``full``                — the complete algorithm;
- ``no-perturbation``     — Algorithm 2 without the ±δ weight perturbation;
- ``paper-denormalized``  — perturbation with the paper-literal denormalized
                            weights (quantifies the inflation discussed in
                            ``repro.core.merging``);
- ``no-batch-scaling``    — Algorithm 1 disabled (static per-GPU batches);
- ``uniform-merge``       — elastic-style equal-weight merging;
- ``no-momentum``         — γ = 0 in the global update;
- ``updates-times-batch`` — the §III-B alternative weighting.

Plus the β and δ sweeps and the learning-rate grid used to pick the
per-dataset defaults.
"""

import pytest

from benchmarks.conftest import bench_budget, bench_seed
from repro.harness.figures import default_config_for
from repro.harness.sweep import ablation_grid, sweep
from repro.utils.tables import format_table

DATASET = "amazon670k-bench"


def _summary_rows(results):
    rows = []
    for name, trace in results.items():
        rows.append([
            name,
            trace.best_accuracy,
            trace.final_accuracy,
            trace.total_epochs,
            trace.perturbation_frequency(),
        ])
    return rows


def test_ablation_grid(once):
    base = default_config_for(DATASET)
    results = once(
        ablation_grid,
        base,
        dataset=DATASET,
        n_gpus=4,
        time_budget_s=bench_budget(),
        seed=bench_seed(),
        eval_samples=512,
    )
    print()
    print(format_table(
        ["variant", "best acc", "final acc", "epochs", "perturb freq"],
        _summary_rows(results),
        title=f"Ablations — {DATASET}, 4 heterogeneous GPUs",
    ))
    full = results["full"]
    # Batch scaling is load-bearing: removing it costs late accuracy.
    assert full.final_accuracy >= results["no-batch-scaling"].final_accuracy
    # Momentum is load-bearing.
    assert full.best_accuracy >= results["no-momentum"].best_accuracy
    # Renormalized perturbation >= paper-literal denormalized weights.
    assert full.best_accuracy >= results["paper-denormalized"].best_accuracy - 0.02


def test_beta_sweep(once):
    """β controls how aggressively batch sizes chase update parity."""
    base = default_config_for(DATASET)
    results = once(
        sweep,
        base,
        "beta",
        [1.0, 4.0, 8.0, 16.0, 32.0],
        dataset=DATASET,
        n_gpus=4,
        time_budget_s=bench_budget() * 0.7,
        seed=bench_seed(),
        eval_samples=512,
    )
    print()
    rows = [
        [beta, tr.best_accuracy, max(tr.staleness_history, default=0),
         tr.total_epochs]
        for beta, tr in results.items()
    ]
    print(format_table(
        ["beta", "best acc", "max staleness", "epochs"],
        rows, title="beta sweep",
    ))
    # Some scaling beats none only if it actually reduces staleness;
    # at minimum every run stays within bounds and trains.
    for trace in results.values():
        assert trace.best_accuracy > 0.2


def test_delta_sweep(once):
    """δ perturbation factor sweep (paper default 0.1)."""
    base = default_config_for(DATASET)
    results = once(
        sweep,
        base,
        "delta",
        [0.0, 0.05, 0.1, 0.2],
        dataset=DATASET,
        n_gpus=4,
        time_budget_s=bench_budget() * 0.7,
        seed=bench_seed(),
        eval_samples=512,
    )
    print()
    print(format_table(
        ["delta", "best acc", "perturb freq"],
        [[d, tr.best_accuracy, tr.perturbation_frequency()]
         for d, tr in results.items()],
        title="delta sweep",
    ))
    for trace in results.values():
        assert trace.best_accuracy > 0.2


def test_learning_rate_grid(once):
    """The §V-A grid that selected the per-dataset base learning rate."""
    base = default_config_for(DATASET)
    results = once(
        sweep,
        base,
        "base_lr",
        [0.02, 0.2, 2.0, 20.0],
        dataset=DATASET,
        n_gpus=4,
        time_budget_s=bench_budget() * 0.7,
        seed=bench_seed(),
        eval_samples=512,
    )
    print()
    print(format_table(
        ["base_lr", "best acc", "final acc"],
        [[lr, tr.best_accuracy, tr.final_accuracy]
         for lr, tr in results.items()],
        title="learning-rate grid (powers of 10 around the default)",
    ))
    best_lr = max(results, key=lambda lr: results[lr].best_accuracy)
    assert best_lr == pytest.approx(base.base_lr)
