"""FIG1 — Multi-GPU heterogeneity on an identical sparse batch (Figure 1).

Paper: "given the same training batch, the gap between the fastest and
slowest GPU is as large as 32% when performing an epoch of the training
algorithm on a server with 4 NVIDIA V100 GPUs."

This bench times one identical epoch on every virtual GPU and prints the
per-device epoch times plus the fastest↔slowest gap; the gap should land in
the tens of percent, approaching the configured 32% base spread.
"""

from benchmarks.conftest import bench_seed
from repro.harness.figures import fig1_heterogeneity
from repro.harness.report import render_fig1


def test_fig1_heterogeneity(once):
    rows = once(
        fig1_heterogeneity,
        n_gpus=4,
        dataset="amazon670k-bench",
        batch_size=256,
        n_epoch_batches=16,
        seed=bench_seed(),
    )
    print()
    print(render_fig1(rows))
    gap = max(r["relative_slowdown"] for r in rows)
    assert 0.15 < gap < 0.45, f"heterogeneity gap {gap:.1%} out of expected band"


def test_fig1_gap_vanishes_on_uniform_hardware(once):
    """Control: with max_gap=0 only oscillation/jitter remains (a few %)."""
    rows = once(
        fig1_heterogeneity,
        n_gpus=4,
        dataset="amazon670k-bench",
        batch_size=256,
        n_epoch_batches=16,
        seed=bench_seed(),
        max_gap=0.0,
    )
    print()
    print(render_fig1(rows))
    gap = max(r["relative_slowdown"] for r in rows)
    assert gap < 0.15
