"""Benchmark suite: one module per paper table/figure plus ablations.

Run with ``pytest benchmarks/ --benchmark-only -s`` (the ``-s`` shows the
regenerated tables/series inline).
"""
