"""SERVE — end-to-end benchmark of the serving subsystem.

Trains a tiny model on the ``micro`` dataset, snapshots it, and replays
open-loop request streams against the snapshot on the simulated
heterogeneous server. Nine sections:

1. **snapshot** — save/load round-trip: wall time, file sizes, and a
   bit-identity check of the restored parameter vector;
2. **latency** — sequential (batch=1) vs adaptive micro-batching under the
   same saturating Poisson load: throughput, p50/p95/p99 latency, mean
   batch size. ``speedup`` is the adaptive/sequential throughput ratio —
   the headline number (the fixed per-dispatch overhead is what
   micro-batching amortizes);
3. **lsh** — exact dense top-k vs the LSH path on the *micro* model
   (L=64): host scoring wall time, candidate selectivity, and recall@5 vs
   exact. At this label count LSH is expected to lose — candidate sets
   cover most of the output layer; the section documents the regime where
   the crossover must choose exact;
4. **lsh_scale** — the batched multi-probe LSH pipeline vs exact dense
   top-k at XML scale (L = 8k smoke / 32k full) on a planted-similarity
   synthetic snapshot (each query has 5 high-cosine output columns, so
   recall@5 is measurable against an unambiguous exact top-5). Host wall
   time best-of-3 per path; ``speedup`` is exact/LSH — the tentpole gate;
5. **crossover** — ``auto`` scoring (per-batch cost-model choice between
   exact and LSH) vs both fixed policies on the same arrival stream, in
   both regimes: small-L (micro, where exact must win) and large-L (the
   planted snapshot, where LSH must win). Simulated-clock throughput;
   ``auto_vs_best`` is auto's throughput over the better fixed mode's;
6. **burst** — the adaptive sizer under a 4x burst arrival pattern vs the
   same-rate Poisson stream: p99 and queue high-water mark;
7. **swap** — zero-downtime hot-swap under load: a training session
   publishes versions into a snapshot store on the sim clock, and a
   Poisson stream spanning that publish window is served while every
   later version swaps in mid-traffic (warming off the dispatch path,
   per-request pinning, labeled recall canary). Reports swap counts,
   versions served, and p99 of requests overlapping a swap window vs the
   steady state; a second sub-run publishes a garbage model mid-window
   and must roll back to the prior version;
8. **tenants** — multi-tenant isolation under the priority-tier + WFQ
   scheduler. A class-0 victim at 30% of sequential capacity is served
   solo, then contended by a class-1 noisy neighbor at 10x its fair
   share; the victim's contended p99 must stay within 1.3x its solo p99.
   A 40x surge sub-run with a shallow queue shows graded shedding (every
   shed lands on the aggressor), and a uniform-load sub-run splits one
   saturating stream across two same-class tenants to confirm the
   scheduler costs <10% aggregate throughput vs the single-tenant path;
9. **elastic** — the membership subsystem under the ``spot-churn``
   preset (fail + join + throttle/recover). Training: a churned adaptive
   run vs a static one at the same budget — the churned run discards the
   failed replica's update exactly once, rescales survivors, warm-starts
   the joiner, and must stay within a bounded accuracy factor of static.
   Serving: the same saturating stream steady vs churned — survivors
   absorb a failed device's share with p99 within a bounded factor.

Run as a script: ``python benchmarks/bench_serve.py [--smoke] [--out F]
[--check]``. ``--check`` gates on absolute floors: adaptive throughput
must be >= 1x sequential in smoke mode (>= 3x full), LSH recall@5 must be
>= 0.8 in both LSH sections, the lsh_scale speedup must be >= 1x in smoke
mode (>= 3x full, the paper-style claim: batching makes the approximate
path actually win), ``auto`` must land within 10% of the better fixed
scoring mode in both crossover regimes, the swap section must commit
at least one hot-swap with zero shed/mis-versioned requests, a
swap-window p99 within 1.25x steady state, and a rollback on the
injected recall regression, and the tenants section must keep the
noisy-neighbor victim's p99 within 1.3x solo, shed only aggressor work
in the surge, and hold >= 0.9x single-tenant aggregate throughput on the
uniform split, and the elastic section must keep churned training within
2x smoke / 1.5x full of static accuracy, deliver fail+join+throttle
events, and keep churned serve p99 within 3x smoke / 2.5x full of steady
with every request served — the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import make_engine, make_trainer  # noqa: E402
from repro.data.registry import load_task  # noqa: E402
from repro.elastic import ClusterMembership  # noqa: E402
from repro.gpu.cluster import make_server  # noqa: E402
from repro.gpu.cost import GpuCostParams  # noqa: E402
from repro.harness.experiment import ExperimentSpec  # noqa: E402
from repro.serve import (  # noqa: E402
    LoadSpec,
    ModelSnapshot,
    Predictor,
    ServingEngine,
    SnapshotStore,
    TenantLoad,
    generate_arrivals,
    generate_multi_tenant_arrivals,
    nearest_rank_percentile,
    sample_query_rows,
)
from repro.sparse.mlp import MLPArchitecture, SparseMLP  # noqa: E402

RECALL_FLOOR = 0.8        # LSH recall@5 vs exact (both modes)
SPEEDUP_FLOOR_SMOKE = 1.0  # adaptive >= sequential throughput in smoke
SPEEDUP_FLOOR_FULL = 3.0   # the paper-style amortization claim in full
#: The batched LSH pipeline vs exact dense top-k (host wall clock) at scale.
LSH_SCALE_FLOOR_SMOKE = 1.0
LSH_SCALE_FLOOR_FULL = 3.0
#: ``auto`` scoring may lose at most 10% to the better fixed mode.
CROSSOVER_FLOOR = 0.9
#: p99 of requests overlapping a swap window vs steady state (the
#: zero-downtime claim: warming happens off the dispatch path).
SWAP_P99_FACTOR = 1.25
#: Noisy-neighbor isolation: the class-0 victim's contended p99 over its
#: solo p99 under a 10x-fair-share class-1 aggressor.
ISOLATION_FACTOR = 1.3
#: Aggregate throughput of the WFQ scheduler on a uniform two-tenant
#: split vs the single-tenant engine on the same arrivals.
MT_THROUGHPUT_FLOOR = 0.9
#: Elastic churn: best accuracy of the static run over the spot-churn run
#: at the same time budget (training keeps working through fail/join).
ELASTIC_TRAIN_FACTOR_SMOKE = 2.0
ELASTIC_TRAIN_FACTOR_FULL = 1.5
#: Elastic churn: p99 of the churned serve over the steady serve on the
#: same arrivals (survivors absorb a failed device without blowing SLOs).
ELASTIC_P99_FACTOR_SMOKE = 3.0
ELASTIC_P99_FACTOR_FULL = 2.5
#: Planted-similarity LSH geometry (tuned: ~0.8% candidate fraction with
#: recall@5 ~0.95 at both bench scales).
SCALE_TABLES, SCALE_BITS, SCALE_PROBES = 12, 13, 4
N_GPUS = 2
K = 5


def _fresh_server(seed: int = 0):
    return make_server(
        N_GPUS, heterogeneity="het",
        cost_params=GpuCostParams.tiny_model_profile(), seed=seed,
    )


def _train_snapshot(workdir: Path, smoke: bool) -> ModelSnapshot:
    """One short adaptive run on micro; returns the round-tripped snapshot."""
    budget = 0.05 if smoke else 0.3
    spec = ExperimentSpec(
        dataset="micro", gpu_counts=(N_GPUS,), time_budget_s=budget,
    )
    trainer = make_trainer("adaptive", spec)
    trace = trainer.run(time_budget_s=budget)
    stem = workdir / "bench-model"
    trainer.save_snapshot(stem, final_accuracy=trace.final_accuracy)
    return ModelSnapshot.load(stem)


def _saturating_rate(predictor: Predictor, X) -> float:
    """~10x the cluster's sequential capacity (drives both modes to the
    regime where dispatch overhead, not offered load, is the bottleneck)."""
    probe = predictor.workload(X[:1])
    per_request = _fresh_server().gpus[0].cost_model.inference_time(
        probe, n_active_gpus=N_GPUS,
    )
    return 10.0 * N_GPUS / per_request


def _serve(predictor, X, arrivals, rows, *, mode, scoring="exact",
           pattern_seed=0):
    engine = ServingEngine(
        predictor, _fresh_server(seed=pattern_seed), mode=mode,
        target_latency_s=2e-3, scoring=scoring,
    )
    return engine.serve(X, arrivals, k=K, row_indices=rows)


def _planted_snapshot(L, n_queries, *, h=128, seed=0, n_planted=5,
                      support=32):
    """A synthetic XML-scale snapshot with planted high-similarity labels.

    The model is a transparent 1-hidden-layer MLP (``W1 = I``, zero biases)
    so each sparse non-negative query row *is* its own hidden activation.
    The output layer holds ``L`` Gaussian background columns, except that
    every query gets ``n_planted`` planted columns with cosine similarity
    0.80–0.97 to its activation (disjoint round-robin label ids). The
    planted logits sit ~sqrt(h)·cos above the background noise, so the
    exact top-5 is unambiguous and LSH recall@5 measures exactly how much
    of it survives candidate retrieval. Sparse support (~support/h dense)
    keeps background cosines near zero — the selective-retrieval regime
    the approximate path is built for.
    """
    if n_planted * n_queries > L:
        raise ValueError("need n_planted * n_queries <= L for disjoint ids")
    rng = np.random.default_rng(seed)
    arch = MLPArchitecture(h, L, hidden=(h,))
    state = SparseMLP(arch).init_state(seed=0)
    state["W1"][...] = np.eye(h, dtype=np.float32)
    state["b1"][...] = 0.0
    W2 = rng.normal(size=(h, L)).astype(np.float32)
    X = np.zeros((n_queries, h), dtype=np.float32)
    for i in range(n_queries):
        idx = rng.choice(h, size=support, replace=False)
        X[i, idx] = rng.gamma(2.0, 1.0, size=support)
    hhat = X / np.linalg.norm(X, axis=1, keepdims=True)
    cosines = np.linspace(0.80, 0.97, n_planted)
    for j in range(n_planted):
        g = rng.normal(size=(n_queries, h)).astype(np.float32)
        g -= (g * hhat).sum(axis=1, keepdims=True) * hhat
        g /= np.linalg.norm(g, axis=1, keepdims=True)
        planted = np.sqrt(h) * (cosines[j] * hhat
                                + np.sqrt(1.0 - cosines[j] ** 2) * g)
        W2[:, np.arange(n_queries) * n_planted + j] = planted.T
    state["W2"][...] = W2
    state["b2"][...] = 0.0
    snapshot = ModelSnapshot(
        arch=arch, state=state, meta={"dataset": "planted-synthetic"},
    )
    return snapshot, sp.csr_matrix(X)


def _scale_predictor(snapshot):
    return Predictor(
        snapshot, lsh_tables=SCALE_TABLES, lsh_bits=SCALE_BITS,
        lsh_probes=SCALE_PROBES, lsh_seed=0,
    )


def _best_of(fn, repeats=3):
    """Min wall time (us) over ``repeats`` — robust to scheduler noise."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times) * 1e6


def bench_snapshot(snapshot: ModelSnapshot, workdir: Path) -> dict:
    stem = workdir / "roundtrip"
    t0 = time.perf_counter()
    header = snapshot.save(stem)
    save_us = (time.perf_counter() - t0) * 1e6
    t0 = time.perf_counter()
    restored = ModelSnapshot.load(stem)
    load_us = (time.perf_counter() - t0) * 1e6
    identical = bool(
        np.array_equal(snapshot.state.vector, restored.state.vector)
    )
    npz = stem.parent / f"{stem.name}.snapshot.npz"
    return {
        "what": f"{snapshot.state.n_params}-param snapshot round-trip",
        "save_us": save_us,
        "load_us": load_us,
        "header_bytes": header.stat().st_size,
        "npz_bytes": npz.stat().st_size,
        "bit_identical": identical,
    }


def bench_latency(predictor: Predictor, task, smoke: bool) -> dict:
    n_requests = 200 if smoke else 2000
    X = task.test.X
    rate = _saturating_rate(predictor, X)
    load = LoadSpec(n_requests=n_requests, rate_rps=rate, seed=0)
    arrivals = generate_arrivals(load)
    rows = sample_query_rows(X.shape[0], n_requests, seed=0)
    out = {"what": f"{n_requests} Poisson requests at {rate:.0f} rps "
                   f"on {N_GPUS} GPUs"}
    for mode in ("sequential", "adaptive"):
        result = _serve(predictor, X, arrivals, rows, mode=mode)
        r = result.report
        out[mode] = {
            "throughput_rps": r.throughput_rps,
            "latency_p50_ms": r.percentile(50) * 1e3,
            "latency_p95_ms": r.percentile(95) * 1e3,
            "latency_p99_ms": r.percentile(99) * 1e3,
            "mean_batch_size": r.mean_batch_size,
            "max_queue_depth": result.max_queue_depth,
        }
    out["speedup"] = (
        out["adaptive"]["throughput_rps"] / out["sequential"]["throughput_rps"]
    )
    return out


def bench_lsh(predictor: Predictor, task, smoke: bool) -> dict:
    n_queries = 128 if smoke else 512
    rows = sample_query_rows(task.test.X.shape[0], n_queries, seed=1)
    X = task.test.X[rows]
    predictor.rebuild_lsh()
    # Warm both paths once (BLAS thread pools, table hashing).
    predictor.topk(X[:8], K)
    predictor.topk_lsh(X[:8], K)
    t0 = time.perf_counter()
    predictor.topk(X, K)
    exact_us = (time.perf_counter() - t0) * 1e6
    t0 = time.perf_counter()
    predictor.topk_lsh(X, K)
    lsh_us = (time.perf_counter() - t0) * 1e6
    counts = predictor.candidate_counts(X)
    return {
        "what": f"{n_queries} queries, exact dense vs LSH candidates, "
                f"L={predictor.arch.n_labels}",
        "exact_us": exact_us,
        "lsh_us": lsh_us,
        "recall_at_5": predictor.recall_at_k(X, K),
        "mean_candidates": float(counts.mean()),
        "candidate_fraction": float(counts.mean() / predictor.arch.n_labels),
    }


def bench_lsh_scale(smoke: bool) -> dict:
    L, n_queries = (8192, 128) if smoke else (32768, 512)
    snapshot, X = _planted_snapshot(L, n_queries)
    predictor = _scale_predictor(snapshot)
    predictor.rebuild_lsh()
    # Warm both paths (BLAS thread pools, workspace buffers, flat tables).
    predictor.topk(X[:8], K)
    predictor.topk_lsh(X[:8], K)
    exact_us = _best_of(lambda: predictor.topk(X, K))
    lsh_us = _best_of(lambda: predictor.topk_lsh(X, K))
    counts = predictor.candidate_counts(X)
    return {
        "what": f"{n_queries} planted queries, batched LSH vs exact dense, "
                f"L={L}, T={SCALE_TABLES}/K={SCALE_BITS}/P={SCALE_PROBES}",
        "exact_us": exact_us,
        "lsh_us": lsh_us,
        "speedup": exact_us / lsh_us,
        "recall_at_5": predictor.recall_at_k(X, K),
        "mean_candidates": float(counts.mean()),
        "candidate_fraction": float(counts.mean() / L),
    }


def bench_crossover(snapshot: ModelSnapshot, task, smoke: bool) -> dict:
    n_requests = 100 if smoke else 400
    L_big, n_big = (4096, 64) if smoke else (16384, 256)
    planted_snap, X_big = _planted_snapshot(L_big, n_big)
    # Fresh predictors per scoring run so the candidate-fraction EWMA of one
    # policy cannot leak into another's cost-model pricing.
    scenarios = {
        "small_L": (lambda: Predictor(snapshot), task.test.X),
        "large_L": (lambda: _scale_predictor(planted_snap), X_big),
    }
    out = {"what": f"{n_requests} requests per scoring mode, adaptive "
                   f"micro-batching, small-L (micro) vs large-L "
                   f"(planted, L={L_big})"}
    for name, (make_predictor, X) in scenarios.items():
        rate = _saturating_rate(make_predictor(), X)
        load = LoadSpec(n_requests=n_requests, rate_rps=rate, seed=3)
        arrivals = generate_arrivals(load)
        rows = sample_query_rows(X.shape[0], n_requests, seed=3)
        entry = {}
        for scoring in ("exact", "lsh", "auto"):
            result = _serve(make_predictor(), X, arrivals, rows,
                            mode="adaptive", scoring=scoring)
            entry[scoring] = {
                "throughput_rps": result.report.throughput_rps,
                "scoring_batches": result.scoring_batches,
            }
            if result.mean_candidate_fraction is not None:
                entry[scoring]["mean_candidate_fraction"] = (
                    result.mean_candidate_fraction
                )
        best_fixed = max(entry["exact"]["throughput_rps"],
                         entry["lsh"]["throughput_rps"])
        entry["auto_vs_best"] = entry["auto"]["throughput_rps"] / best_fixed
        out[name] = entry
    return out


def bench_burst(predictor: Predictor, task, smoke: bool) -> dict:
    n_requests = 200 if smoke else 2000
    X = task.test.X
    # Base rate below the adaptive capacity, hot episodes (4x) above it:
    # burst spikes, not steady overload, are what stresses the sizer.
    rate = _saturating_rate(predictor, X) / 4.0
    rows = sample_query_rows(X.shape[0], n_requests, seed=2)
    out = {"what": f"{n_requests} requests at {rate:.0f} rps, "
                   f"poisson vs 4x burst, adaptive mode"}
    for pattern in ("poisson", "burst"):
        load = LoadSpec(
            n_requests=n_requests, rate_rps=rate, pattern=pattern, seed=2,
        )
        arrivals = generate_arrivals(load)
        result = _serve(predictor, X, arrivals, rows, mode="adaptive")
        r = result.report
        out[pattern] = {
            "latency_p50_ms": r.percentile(50) * 1e3,
            "latency_p99_ms": r.percentile(99) * 1e3,
            "mean_batch_size": r.mean_batch_size,
            "max_queue_depth": result.max_queue_depth,
        }
    return out


def bench_tenants(predictor: Predictor, task, smoke: bool) -> dict:
    """Noisy-neighbor isolation, graded shedding, and WFQ overhead."""
    n_victim = 800 if smoke else 2000
    X = task.test.X
    capacity = _saturating_rate(predictor, X) / 10.0  # sequential capacity
    victim_rate = 0.3 * capacity
    fair_share = capacity / 2.0  # two tenants sharing the cluster
    duration = n_victim / victim_rate

    def _mt_engine(max_depth=256):
        return ServingEngine(
            predictor, _fresh_server(), mode="adaptive",
            class_slo_ms={0: 2.0, 1: 2.0}, max_queue_depth=max_depth,
        )

    def _contended(aggressor_x_fair, max_depth):
        aggressor_rate = aggressor_x_fair * fair_share
        n_aggressor = max(1, int(aggressor_rate * duration))
        loads = [
            TenantLoad("victim",
                       LoadSpec(n_requests=n_victim, rate_rps=victim_rate,
                                seed=0), priority_class=0),
            TenantLoad("noisy",
                       LoadSpec(n_requests=n_aggressor,
                                rate_rps=aggressor_rate, seed=1),
                       priority_class=1),
        ]
        times, tenants, classes = generate_multi_tenant_arrivals(loads)
        engine = _mt_engine(max_depth)
        return engine.serve(X, times, k=K, tenants=tenants,
                            priority_classes=classes)

    # Victim alone: its open-loop arrival schedule is identical in the
    # contended runs (independent per-tenant streams), so the p99 ratio
    # is pure interference.
    solo = _mt_engine().serve(
        X, generate_arrivals(
            LoadSpec(n_requests=n_victim, rate_rps=victim_rate, seed=0)
        ), k=K,
        tenants=np.full(n_victim, "victim", dtype=object),
        priority_classes=np.zeros(n_victim, dtype=np.int64),
    )
    solo_p99 = solo.tenants["victim"]["latency_p99_ms"]

    contended = _contended(aggressor_x_fair=10.0, max_depth=256)
    victim = contended.tenants["victim"]
    noisy = contended.tenants["noisy"]
    neighbor = {
        "aggressor_x_fair": 10.0,
        "victim_p99_solo_ms": solo_p99,
        "victim_p99_contended_ms": victim["latency_p99_ms"],
        "isolation_ratio": victim["latency_p99_ms"] / solo_p99,
        "victim_n_shed": victim["n_shed"],
        "aggressor_completed": noisy["completed"],
        "aggressor_p99_ms": noisy["latency_p99_ms"],
        "max_queue_depth": contended.max_queue_depth,
    }

    # 40x fair share against a shallow queue: the scheduler must shed,
    # and every shed must land on the aggressor (priority ordering).
    surge = _contended(aggressor_x_fair=40.0, max_depth=64)
    sv, sn = surge.tenants["victim"], surge.tenants["noisy"]
    surge_out = {
        "aggressor_x_fair": 40.0,
        "max_queue_depth_limit": 64,
        "victim_p99_ratio": sv["latency_p99_ms"] / solo_p99,
        "victim_n_shed": sv["n_shed"],
        "aggressor_n_shed": sn["n_shed"],
        "aggressor_completed": sn["completed"],
        "shed_by_tenant": dict(surge.shed_by_tenant),
    }

    # Same saturating stream served once untagged and once split across
    # two equal-weight tenants: the WFQ machinery must be ~free.
    n_uniform = 1000 if smoke else 4000
    arrivals = generate_arrivals(
        LoadSpec(n_requests=n_uniform, rate_rps=5.0 * capacity, seed=7)
    )
    single = ServingEngine(
        predictor, _fresh_server(), mode="adaptive", target_latency_s=2e-3,
    ).serve(X, arrivals, k=K)
    split_tenants = np.where(
        np.arange(n_uniform) % 2 == 0, "a", "b"
    ).astype(object)
    multi = ServingEngine(
        predictor, _fresh_server(), mode="adaptive", target_latency_s=2e-3,
    ).serve(X, arrivals, k=K, tenants=split_tenants,
            priority_classes=np.zeros(n_uniform, dtype=np.int64))
    uniform = {
        "single_rps": single.report.throughput_rps,
        "multi_rps": multi.report.throughput_rps,
        "throughput_ratio": (
            multi.report.throughput_rps / single.report.throughput_rps
        ),
        "fairness": multi.fairness,
    }
    return {
        "what": f"victim {n_victim} reqs @30% capacity vs class-1 "
                f"aggressor at 10x/40x fair share; {n_uniform}-req "
                f"uniform split, adaptive mode",
        "noisy_neighbor": neighbor,
        "surge": surge_out,
        "uniform": uniform,
    }


def bench_swap(task, workdir: Path, smoke: bool) -> dict:
    """Hot-swap under load (good path) + injected-regression rollback."""
    budget = 0.05 if smoke else 0.2
    n_requests = 600 if smoke else 3000
    X, Y = task.test.X, task.test.Y

    # A training session publishing ~5 versions on the sim clock.
    store = SnapshotStore(workdir / "bench-store")
    spec = ExperimentSpec(
        dataset="micro", gpu_counts=(N_GPUS,), time_budget_s=budget,
    )
    trainer = make_trainer("adaptive", spec)
    trainer.publish_snapshot(store, every_s=budget / 5.0)
    trainer.run(time_budget_s=budget)

    # Arrivals span the publish window (plus slack) at a rate well below
    # capacity, so steady-state latency is uniform and the swap-window p99
    # comparison is meaningful.
    span = store.entries[-1].published_s * 1.2
    rate = n_requests / span
    arrivals = generate_arrivals(
        LoadSpec(n_requests=n_requests, rate_rps=rate, seed=4)
    )
    rows = sample_query_rows(X.shape[0], n_requests, seed=4)
    engine = make_engine(
        store, mode="adaptive", scoring="auto", n_gpus=N_GPUS,
    )
    result = engine.serve(X, arrivals, k=K, row_indices=rows,
                          canary_labels=Y)

    # p99 of requests whose lifetime overlapped a swap (warming -> commit)
    # window vs everything else.
    windows = [
        (s["t_warm_start"], s["t_commit"])
        for s in result.swaps if "t_commit" in s
    ]

    def _in_window(r):
        return any(
            r.t_arrival <= t1 and r.t_done >= t0 for t0, t1 in windows
        )

    served = [r for r in result.requests if r.t_done is not None]
    in_window = [r.latency_s for r in served if _in_window(r)]
    steady = [r.latency_s for r in served if not _in_window(r)]
    good = {
        "n_requests": n_requests,
        "n_versions": len(store.versions()),
        "swaps": result.n_swaps,
        "rollbacks": result.n_rollbacks,
        "swap_failures": result.n_swap_failures,
        "mis_versioned": result.mis_versioned,
        "n_shed": result.n_shed,
        "versions_served": {
            str(v): n for v, n in sorted(result.versions_served.items())
        },
        "requests_in_swap_windows": len(in_window),
    }
    if in_window and steady:
        good["p99_in_window_ms"] = nearest_rank_percentile(in_window, 99) * 1e3
        good["p99_steady_ms"] = nearest_rank_percentile(steady, 99) * 1e3
        good["swap_p99_ratio"] = (
            good["p99_in_window_ms"] / good["p99_steady_ms"]
        )

    # Injected regression: trained v1 at t=0, a garbage re-init mid-window.
    # The labeled recall canary must roll the active pointer back to v1.
    bad_store = SnapshotStore(workdir / "bench-store-bad")
    trained = store.load(store.latest_version())
    bad_store.publish(trained, published_s=0.0)
    garbage = ModelSnapshot(
        arch=trained.arch,
        state=SparseMLP(trained.arch).init_state(seed=999),
        meta=dict(trained.meta),
    )
    bad_store.publish(garbage, published_s=span / 2.0)
    engine = make_engine(bad_store, mode="adaptive", n_gpus=N_GPUS)
    bad_result = engine.serve(X, arrivals, k=K, row_indices=rows,
                              canary_labels=Y)
    rollback = {
        "swaps": bad_result.n_swaps,
        "rollbacks": bad_result.n_rollbacks,
        "active_version": bad_result.active_version,
        "n_unserved": sum(
            1 for r in bad_result.requests if r.t_done is None
        ),
        "reasons": [
            s.get("rollback_reason") for s in bad_result.swaps
            if s.get("rolled_back")
        ],
    }
    return {
        "what": f"{n_requests} Poisson requests spanning a "
                f"{len(store.versions())}-version publish schedule, "
                f"adaptive mode, auto scoring",
        "good_path": good,
        "rollback": rollback,
    }


def bench_elastic(predictor: Predictor, task, smoke: bool) -> dict:
    """Elastic membership: spot-churn vs static, training and serving.

    Training: two adaptive runs at the same time budget on a 4-GPU
    server — one static, one driven through the ``spot-churn`` preset
    (fail + join + throttle/recover, scaled to the device count). The
    churned run must keep learning: ``quality_ratio`` is static best
    accuracy over churned best accuracy.

    Serving: the same saturating Poisson stream replayed steady and
    under spot-churn; ``p99_ratio`` is churned p99 over steady p99.
    """
    budget = 0.05 if smoke else 0.2
    n_train_gpus = 4

    def train(churn):
        spec = ExperimentSpec(
            dataset="micro", gpu_counts=(n_train_gpus,), time_budget_s=budget,
        )
        server = spec.build_server(n_train_gpus)
        membership = None
        if churn:
            membership = ClusterMembership(
                server, churn, duration_s=budget, seed=0,
            )
        trainer = make_trainer(
            "adaptive", spec, server=server, membership=membership,
        )
        trace = trainer.run(time_budget_s=budget)
        return trace, membership

    static_trace, _ = train(None)
    churned_trace, membership = train("spot-churn")
    summary = membership.summary()
    quality_ratio = float(
        static_trace.best_accuracy / max(churned_trace.best_accuracy, 1e-9)
    )

    n_requests = 200 if smoke else 1500
    X = task.test.X
    rate = _saturating_rate(predictor, X)
    arrivals = generate_arrivals(
        LoadSpec(n_requests=n_requests, rate_rps=rate, seed=0)
    )
    rows = sample_query_rows(X.shape[0], n_requests, seed=0)
    span = float(arrivals[-1])

    steady = _serve(predictor, X, arrivals, rows, mode="adaptive")
    server = _fresh_server()
    serve_membership = ClusterMembership(
        server, "spot-churn", duration_s=span, seed=0,
    )
    engine = ServingEngine(
        predictor, server, mode="adaptive", target_latency_s=2e-3,
        membership_check_every_s=span / 256.0,
    )
    churned = engine.serve(
        X, arrivals, k=K, row_indices=rows, membership=serve_membership,
    )
    p99_ratio = float(
        churned.report.percentile(99) / steady.report.percentile(99)
    )
    return {
        "what": (f"spot-churn vs static: {n_train_gpus}-GPU training at "
                 f"{budget:.2f} s budget; {n_requests} requests on "
                 f"{N_GPUS} GPUs"),
        "training": {
            "static_best_accuracy": float(static_trace.best_accuracy),
            "churned_best_accuracy": float(churned_trace.best_accuracy),
            "quality_ratio": quality_ratio,
            "n_events": summary["n_events"],
            "n_applied": summary["n_applied"],
            "by_kind": summary["by_kind"],
            "updates_merged": summary["updates_merged"],
            "updates_discarded": summary["updates_discarded"],
            "final_devices": summary["final_devices"],
        },
        "serving": {
            "steady_p99_ms": float(steady.report.percentile(99) * 1e3),
            "churned_p99_ms": float(churned.report.percentile(99) * 1e3),
            "p99_ratio": p99_ratio,
            "n_served": sum(
                1 for r in churned.requests if r.t_done is not None
            ),
            "n_requests": n_requests,
            "n_membership_events": churned.n_membership_events,
            "final_devices": churned.final_devices,
        },
    }


def run(smoke: bool) -> dict:
    task = load_task("micro", seed=0)
    sections = {}
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        workdir = Path(tmp)
        snapshot = _train_snapshot(workdir, smoke)
        predictor = Predictor(snapshot)
        sections["snapshot"] = bench_snapshot(snapshot, workdir)
        sections["latency"] = bench_latency(predictor, task, smoke)
        sections["lsh"] = bench_lsh(predictor, task, smoke)
        sections["lsh_scale"] = bench_lsh_scale(smoke)
        sections["crossover"] = bench_crossover(snapshot, task, smoke)
        sections["burst"] = bench_burst(predictor, task, smoke)
        sections["swap"] = bench_swap(task, workdir, smoke)
        sections["tenants"] = bench_tenants(predictor, task, smoke)
        sections["elastic"] = bench_elastic(predictor, task, smoke)
    s = sections["snapshot"]
    print(f" snapshot: save {s['save_us']:8.1f} us, load {s['load_us']:8.1f} us, "
          f"bit-identical={s['bit_identical']}  [{s['what']}]")
    s = sections["latency"]
    print(f"  latency: seq {s['sequential']['throughput_rps']:12.0f} rps -> "
          f"adaptive {s['adaptive']['throughput_rps']:12.0f} rps "
          f"({s['speedup']:.2f}x)  [{s['what']}]")
    s = sections["lsh"]
    print(f"      lsh: exact {s['exact_us']:10.1f} us vs lsh {s['lsh_us']:10.1f} us, "
          f"recall@5={s['recall_at_5']:.3f}, "
          f"candidates={s['candidate_fraction'] * 100:.1f}%  [{s['what']}]")
    s = sections["lsh_scale"]
    print(f"lsh_scale: exact {s['exact_us']:10.1f} us vs lsh "
          f"{s['lsh_us']:10.1f} us ({s['speedup']:.2f}x), "
          f"recall@5={s['recall_at_5']:.3f}, "
          f"candidates={s['candidate_fraction'] * 100:.2f}%  [{s['what']}]")
    s = sections["crossover"]
    print(f"crossover: small-L auto/best {s['small_L']['auto_vs_best']:.3f}, "
          f"large-L auto/best {s['large_L']['auto_vs_best']:.3f}  "
          f"[{s['what']}]")
    s = sections["burst"]
    print(f"    burst: poisson p99 {s['poisson']['latency_p99_ms']:.4f} ms vs "
          f"burst p99 {s['burst']['latency_p99_ms']:.4f} ms, "
          f"burst queue depth {s['burst']['max_queue_depth']}  [{s['what']}]")
    s = sections["swap"]
    g, rb = s["good_path"], s["rollback"]
    ratio = (f", swap-window/steady p99 {g['swap_p99_ratio']:.3f}"
             if "swap_p99_ratio" in g else "")
    print(f"     swap: {g['swaps']} committed / {g['rollbacks']} rolled back "
          f"/ {g['swap_failures']} failed, mis-versioned={g['mis_versioned']}, "
          f"shed={g['n_shed']}{ratio}; injected regression -> "
          f"{rb['rollbacks']} rollback(s), active v{rb['active_version']}  "
          f"[{s['what']}]")
    s = sections["tenants"]
    nn, sg, un = s["noisy_neighbor"], s["surge"], s["uniform"]
    print(f"  tenants: victim p99 {nn['victim_p99_solo_ms']:.4f} -> "
          f"{nn['victim_p99_contended_ms']:.4f} ms under 10x neighbor "
          f"(ratio {nn['isolation_ratio']:.2f}); 40x surge shed "
          f"{sg['aggressor_n_shed']} aggressor / {sg['victim_n_shed']} "
          f"victim; uniform split {un['throughput_ratio']:.3f}x single, "
          f"fairness {un['fairness']:.3f}  [{s['what']}]")
    s = sections["elastic"]
    tr, sv = s["training"], s["serving"]
    print(f"  elastic: train static/churned accuracy "
          f"{tr['quality_ratio']:.2f}x over {tr['n_applied']} applied "
          f"events ({tr['updates_merged']} merged / "
          f"{tr['updates_discarded']} discarded); serve p99 "
          f"{sv['steady_p99_ms']:.4f} -> {sv['churned_p99_ms']:.4f} ms "
          f"({sv['p99_ratio']:.2f}x), {sv['n_served']}/{sv['n_requests']} "
          f"served  [{s['what']}]")
    return {
        "benchmark": "serve",
        "mode": "smoke" if smoke else "full",
        "sections": sections,
    }


def check(results: dict) -> int:
    """CI gate: absolute floors (the simulated clock is machine-independent)."""
    smoke = results["mode"] == "smoke"
    floor = SPEEDUP_FLOOR_SMOKE if smoke else SPEEDUP_FLOOR_FULL
    failures = []
    s = results["sections"]["snapshot"]
    status = "ok" if s["bit_identical"] else "CORRUPT"
    print(f"check snapshot: bit-identical round-trip -> {status}")
    if not s["bit_identical"]:
        failures.append("snapshot")
    speedup = results["sections"]["latency"]["speedup"]
    status = "ok" if speedup >= floor else "REGRESSED"
    print(f"check latency: adaptive/sequential throughput {speedup:.2f}x "
          f"(floor {floor:.2f}x) -> {status}")
    if speedup < floor:
        failures.append("latency")
    recall = results["sections"]["lsh"]["recall_at_5"]
    status = "ok" if recall >= RECALL_FLOOR else "BELOW FLOOR"
    print(f"check lsh: recall@5 {recall:.3f} "
          f"(floor {RECALL_FLOOR:.2f}) -> {status}")
    if recall < RECALL_FLOOR:
        failures.append("lsh")
    scale_floor = LSH_SCALE_FLOOR_SMOKE if smoke else LSH_SCALE_FLOOR_FULL
    s = results["sections"]["lsh_scale"]
    status = "ok" if s["speedup"] >= scale_floor else "REGRESSED"
    print(f"check lsh_scale: batched LSH speedup {s['speedup']:.2f}x "
          f"(floor {scale_floor:.2f}x) -> {status}")
    if s["speedup"] < scale_floor:
        failures.append("lsh_scale")
    status = "ok" if s["recall_at_5"] >= RECALL_FLOOR else "BELOW FLOOR"
    print(f"check lsh_scale: recall@5 {s['recall_at_5']:.3f} "
          f"(floor {RECALL_FLOOR:.2f}) -> {status}")
    if s["recall_at_5"] < RECALL_FLOOR:
        failures.append("lsh_scale_recall")
    s = results["sections"]["crossover"]
    for name in ("small_L", "large_L"):
        ratio = s[name]["auto_vs_best"]
        status = "ok" if ratio >= CROSSOVER_FLOOR else "REGRESSED"
        print(f"check crossover: {name} auto/best {ratio:.3f} "
              f"(floor {CROSSOVER_FLOOR:.2f}) -> {status}")
        if ratio < CROSSOVER_FLOOR:
            failures.append(f"crossover_{name}")
    g = results["sections"]["swap"]["good_path"]
    swapped = g["swaps"] - g["rollbacks"]
    status = "ok" if swapped >= 1 else "NO SWAP"
    print(f"check swap: {swapped} committed-and-kept hot-swap(s) -> {status}")
    if swapped < 1:
        failures.append("swap_commit")
    clean = g["mis_versioned"] == 0 and g["n_shed"] == 0
    status = "ok" if clean else "DROPPED/MIXED"
    print(f"check swap: mis-versioned={g['mis_versioned']}, "
          f"shed={g['n_shed']} -> {status}")
    if not clean:
        failures.append("swap_requests")
    if "swap_p99_ratio" in g:
        ratio = g["swap_p99_ratio"]
        status = "ok" if ratio <= SWAP_P99_FACTOR else "REGRESSED"
        print(f"check swap: swap-window/steady p99 {ratio:.3f} "
              f"(ceiling {SWAP_P99_FACTOR:.2f}) -> {status}")
        if ratio > SWAP_P99_FACTOR:
            failures.append("swap_p99")
    rb = results["sections"]["swap"]["rollback"]
    rolled = (
        rb["rollbacks"] >= 1
        and rb["active_version"] == 1
        and rb["n_unserved"] == 0
    )
    status = "ok" if rolled else "NOT ROLLED BACK"
    print(f"check swap: injected regression -> {rb['rollbacks']} "
          f"rollback(s), active v{rb['active_version']}, "
          f"{rb['n_unserved']} unserved -> {status}")
    if not rolled:
        failures.append("swap_rollback")
    t = results["sections"]["tenants"]
    ratio = t["noisy_neighbor"]["isolation_ratio"]
    status = "ok" if ratio <= ISOLATION_FACTOR else "INTERFERED"
    print(f"check tenants: noisy-neighbor victim p99 ratio {ratio:.3f} "
          f"(ceiling {ISOLATION_FACTOR:.2f}) -> {status}")
    if ratio > ISOLATION_FACTOR:
        failures.append("tenants_isolation")
    sg = t["surge"]
    graded = sg["victim_n_shed"] == 0 and sg["aggressor_n_shed"] > 0
    status = "ok" if graded else "MIS-SHED"
    print(f"check tenants: 40x surge shed {sg['aggressor_n_shed']} "
          f"aggressor / {sg['victim_n_shed']} victim -> {status}")
    if not graded:
        failures.append("tenants_shed")
    tput = t["uniform"]["throughput_ratio"]
    status = "ok" if tput >= MT_THROUGHPUT_FLOOR else "REGRESSED"
    print(f"check tenants: uniform-split aggregate throughput {tput:.3f}x "
          f"single-tenant (floor {MT_THROUGHPUT_FLOOR:.2f}x) -> {status}")
    if tput < MT_THROUGHPUT_FLOOR:
        failures.append("tenants_throughput")
    e = results["sections"]["elastic"]
    train_cap = (ELASTIC_TRAIN_FACTOR_SMOKE if smoke
                 else ELASTIC_TRAIN_FACTOR_FULL)
    ratio = e["training"]["quality_ratio"]
    status = "ok" if ratio <= train_cap else "REGRESSED"
    print(f"check elastic: static/churned training accuracy {ratio:.3f}x "
          f"(ceiling {train_cap:.2f}x) -> {status}")
    if ratio > train_cap:
        failures.append("elastic_training")
    by_kind = e["training"]["by_kind"]
    churned_kinds = {"fail", "join", "throttle"} <= set(by_kind)
    status = "ok" if churned_kinds else "NO CHURN"
    print(f"check elastic: spot-churn delivered {by_kind} -> {status}")
    if not churned_kinds:
        failures.append("elastic_events")
    p99_cap = ELASTIC_P99_FACTOR_SMOKE if smoke else ELASTIC_P99_FACTOR_FULL
    ratio = e["serving"]["p99_ratio"]
    served = e["serving"]["n_served"] == e["serving"]["n_requests"]
    status = ("ok" if ratio <= p99_cap and served
              else ("DROPPED" if not served else "REGRESSED"))
    print(f"check elastic: churned/steady serve p99 {ratio:.3f}x "
          f"(ceiling {p99_cap:.2f}x), "
          f"{e['serving']['n_served']}/{e['serving']['n_requests']} served "
          f"-> {status}")
    if ratio > p99_cap or not served:
        failures.append("elastic_serving")
    if failures:
        print(f"FAIL: serving regression in {failures}")
        return 1
    print("serving benchmark check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small/fast sizes")
    parser.add_argument("--out", type=Path, default=None,
                        help="write results JSON here")
    parser.add_argument("--check", action="store_true",
                        help="gate on the absolute floors (CI)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="cross-run registry root: register this run's "
                             "results (tagged bench:serve)")
    args = parser.parse_args(argv)
    results = run(smoke=args.smoke)
    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    rc = 0
    if args.check:
        rc = check(results)
    if args.registry is not None:
        # After the gate: failed runs register red and stay out of any
        # future history-derived baselines.
        from repro.registry import RunRegistry, record_bench_run

        run_id = record_bench_run(
            RunRegistry(args.registry), "serve", results,
            status="green" if rc == 0 else "red",
        )
        print(f"registered: {run_id} (registry {args.registry})")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
