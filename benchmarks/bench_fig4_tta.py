"""FIG4 — Time-to-accuracy for every method × GPU count (Figure 4).

Regenerates the paper's headline comparison on both dataset analogues:
Adaptive SGD, Elastic SGD, TensorFlow-style mirrored sync SGD, and CROSSBOW
at 1, 2, and 4 heterogeneous GPUs, all under the same simulated time budget
and shared initialization.

Expected shape (the paper's findings):

- Adaptive SGD achieves the highest (or tied-highest) accuracy and reaches
  intermediate accuracy levels first on the 4-GPU heterogeneous server;
- Adaptive and Elastic coincide exactly on a single GPU (same update rule);
- TensorFlow is far slower (per-batch global updates + mirrored aggregation
  + framework overhead starve its sample throughput);
- CROSSBOW trails both elastic-averaging methods on these sparse tasks.
"""

import pytest

from benchmarks.conftest import bench_budget, bench_seed
from repro.harness.figures import fig4_time_to_accuracy
from repro.harness.report import render_tta_curves, render_tta_summary


@pytest.mark.parametrize(
    "dataset", ["amazon670k-bench", "delicious200k-bench"]
)
def test_fig4_time_to_accuracy(once, dataset):
    traces = once(
        fig4_time_to_accuracy,
        dataset,
        gpu_counts=(1, 2, 4),
        time_budget_s=bench_budget(),
        seed=bench_seed(),
    )
    print()
    print(render_tta_curves(
        traces, title=f"Figure 4 — {dataset}", max_points=8,
    ))
    print()
    print(render_tta_summary(list(traces.values())))

    # --- shape assertions -------------------------------------------------
    adaptive4 = traces[("adaptive", 4)]
    elastic4 = traces[("elastic", 4)]
    tf4 = traces[("tensorflow", 4)]
    crossbow4 = traces[("crossbow", 4)]

    # Adaptive achieves the highest accuracy among all methods (ties ok).
    best_all = max(t.best_accuracy for t in traces.values())
    assert adaptive4.best_accuracy >= best_all - 0.02

    # Adaptive strictly dominates TF and CROSSBOW.
    assert adaptive4.best_accuracy > tf4.best_accuracy + 0.05
    assert adaptive4.best_accuracy > crossbow4.best_accuracy + 0.05

    # Hardware efficiency: Adaptive completes more epochs than Elastic on
    # the heterogeneous server (no straggler barrier).
    assert adaptive4.total_epochs > elastic4.total_epochs

    # Single-GPU: Adaptive and Elastic are the same algorithm (§V-B).
    adaptive1 = traces[("adaptive", 1)]
    elastic1 = traces[("elastic", 1)]
    accs_a = [p.accuracy for p in adaptive1.points]
    accs_e = [p.accuracy for p in elastic1.points]
    n = min(len(accs_a), len(accs_e))
    assert accs_a[:n] == pytest.approx(accs_e[:n], abs=1e-6)
